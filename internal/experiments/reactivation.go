package experiments

import (
	"fmt"
	"strings"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/enterprise"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
)

// ReactivationConfig tunes the persistent-bot extension experiment.
//
// The paper's workload model (§V-A) activates each bot exactly once per
// epoch. Real crimeware loops: a bot that fails to reach its botmaster
// retries the same day's domain list after a back-off. This experiment
// quantifies what that does to each estimator — it is the mechanism behind
// the paper's Table II observation that MT's real-trace error can be
// "arbitrarily bad" (1.5–4.3) while MB stays accurate, which the clean
// once-per-epoch workload alone does not reproduce.
type ReactivationConfig struct {
	// Days is the trace length (default 10).
	Days int
	// Seed drives the trace.
	Seed uint64
	// MeanActive is the daily active population (default 20 — the
	// moderate regime of the paper's Figure 7).
	MeanActive float64
	// Backoff is the retry interval (default 3 h).
	Backoff sim.Time
	// Workers bounds the parallelism across estimator configurations
	// (0 = one worker per CPU, 1 = sequential); rows are returned in the
	// fixed case order regardless.
	Workers int
	// Obs, when non-nil, exports the parallel-engine metrics.
	Obs *obs.Registry
}

func (c ReactivationConfig) withDefaults() ReactivationConfig {
	if c.Days <= 0 {
		c.Days = 10
	}
	if c.MeanActive <= 0 {
		c.MeanActive = 20
	}
	if c.Backoff <= 0 {
		c.Backoff = 3 * sim.Hour
	}
	return c
}

// ReactivationRow summarises one estimator's accuracy under persistent
// re-activation.
type ReactivationRow struct {
	Estimator string
	Mode      string // how the estimator was configured
	Summary   stats.Summary
	// MeanBias is the signed mean of (estimate-truth)/truth: positive =
	// overcounting (the paper's real-trace MT signature).
	MeanBias float64
}

// Reactivation runs newGoZ bots that loop until reaching a C2 server and
// evaluates three estimator configurations: the default MB (per-TTL
// evaluation with exact-extent dedup), the whole-epoch MB (the paper's
// original distinct-set formulation, loop-immune at moderate populations
// but saturation-prone at large ones), and MT.
func Reactivation(cfg ReactivationConfig) ([]ReactivationRow, error) {
	cfg = cfg.withDefaults()
	inf := enterprise.Infection{
		Spec:            dga.NewGoZ(),
		Seed:            cfg.Seed ^ 0x9f,
		MeanActive:      cfg.MeanActive,
		Volatility:      0.5,
		ReactivateEvery: cfg.Backoff,
	}
	tr, err := enterprise.Generate(enterprise.Config{
		Days:          cfg.Days,
		Seed:          cfg.Seed,
		BenignClients: 200,
		Granularity:   sim.Second,
		Infections:    []enterprise.Infection{inf},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: reactivation: %w", err)
	}

	wholeEpoch := estimators.NewBernoulli()
	wholeEpoch.DisableTTLPartition = true
	cases := []struct {
		est  estimators.Estimator
		mode string
	}{
		{estimators.NewBernoulli(), "per-TTL + extent dedup (default)"},
		{wholeEpoch, "whole-epoch distinct set (paper's MB)"},
		{estimators.NewTiming(), "Algorithm 1"},
	}
	// The three configurations are independent analyses of the same
	// immutable trace: fan them out on the worker pool, rows stay in case
	// order.
	return runTrials(cfg.Workers, cfg.Obs, "reactivation", len(cases), func(ci int) (ReactivationRow, error) {
		tc := cases[ci]
		bm, err := core.New(core.Config{
			Family:      inf.Spec,
			Seed:        inf.Seed,
			Granularity: sim.Second,
			Estimator:   tc.est,
		})
		if err != nil {
			return ReactivationRow{}, err
		}
		var errs, biases []float64
		for day := 0; day < tr.Days; day++ {
			truth := tr.GroundTruth[inf.Spec.Name][day]
			if truth == 0 {
				continue
			}
			w := sim.Window{Start: sim.Time(day) * sim.Day, End: sim.Time(day+1) * sim.Day}
			land, err := bm.Analyze(tr.Observed.Window(w), w)
			if err != nil {
				return ReactivationRow{}, err
			}
			got := land.Estimate(tr.LocalServer)
			errs = append(errs, stats.ARE(got, float64(truth)))
			biases = append(biases, (got-float64(truth))/float64(truth))
		}
		return ReactivationRow{
			Estimator: tc.est.Name(),
			Mode:      tc.mode,
			Summary:   stats.Summarize(errs),
			MeanBias:  stats.Mean(biases),
		}, nil
	})
}

// RenderReactivation prints the extension experiment's table.
func RenderReactivation(rows []ReactivationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — persistent re-activation loops (newGoZ, same-barrel retries)\n")
	fmt.Fprintf(&b, "%-5s %-38s %18s %10s\n", "est", "mode", "ARE", "bias")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-38s %8.3f ± %6.3f %+9.2f\n",
			r.Estimator, r.Mode, r.Summary.Mean, r.Summary.Std, r.MeanBias)
	}
	b.WriteString("\nReading: retries replay the same domain list, so MT manufactures a new\n")
	b.WriteString("candidate bot per replay wave (positive bias — the paper's real-trace\n")
	b.WriteString("signature), while the distinct-NXD set barely changes, keeping the\n")
	b.WriteString("whole-epoch Bernoulli estimator accurate at moderate populations.\n")
	return b.String()
}
