package experiments

import (
	"fmt"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/enterprise"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
)

// Fig7Config tunes the enterprise-trace evaluation (Figure 7 + Table II).
type Fig7Config struct {
	// Days is the trace length (the paper spans a year; default 60 keeps
	// regeneration minutes-scale while preserving every qualitative
	// comparison).
	Days int
	// Seed drives the trace.
	Seed uint64
	// Scale shrinks DGA pools (1 = paper parameters).
	Scale float64
	// BenignClients / BenignLookupsPerClient size the background load.
	BenignClients          int
	BenignLookupsPerClient float64
	// Workers bounds the per-day analysis parallelism: the daily windows
	// of one (family, estimator) series are analysed concurrently, each
	// day on its own BotMeter instance (0 = one worker per CPU, 1 =
	// sequential). Daily estimates are pure functions of the trace and the
	// day index, so any worker count yields byte-identical series.
	Workers int
	// Stages, when non-nil, accumulates per-stage wall/alloc timings
	// (trace generation vs per-family analysis) for `benchgen -timings`.
	Stages *obs.StageSet
	// Obs, when non-nil, exports experiments_parallel_workers,
	// experiments_trials_total and per-trial latency histograms (one
	// "trial" = one analysed day).
	Obs *obs.Registry
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Days <= 0 {
		c.Days = 60
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.BenignClients <= 0 {
		c.BenignClients = 500
	}
	if c.BenignLookupsPerClient <= 0 {
		c.BenignLookupsPerClient = 20
	}
	return c
}

// Fig7Series is one line of Figure 7: daily truth and daily estimates for
// one (family, estimator) pair.
type Fig7Series struct {
	Family    string
	Model     string
	Estimator string
	Truth     []int
	Estimates []float64
}

// Errors returns the daily AREs, skipping zero-truth days (the paper's
// charts likewise only plot days with observed activity).
func (s Fig7Series) Errors() []float64 {
	out := make([]float64, 0, len(s.Truth))
	for i, n := range s.Truth {
		if n == 0 {
			continue
		}
		out = append(out, stats.ARE(s.Estimates[i], float64(n)))
	}
	return out
}

// fig7Infections returns the paper's three real-world families with their
// per-family estimators: newGoZ (AR → MB), Ramnit (AU → MP), Qakbot
// (AU → MP); MT is evaluated on each as the baseline.
func fig7Infections(cfg Fig7Config) []enterprise.Infection {
	return []enterprise.Infection{
		{Spec: ScaledSpec(dga.NewGoZ(), cfg.Scale), Seed: cfg.Seed ^ 0x90, MeanActive: 60, Volatility: 0.5},
		{Spec: ScaledSpec(dga.Ramnit(), cfg.Scale), Seed: cfg.Seed ^ 0x91, MeanActive: 40, Volatility: 0.6},
		{Spec: ScaledSpec(dga.Qakbot(), cfg.Scale), Seed: cfg.Seed ^ 0x92, MeanActive: 15, Volatility: 0.7},
	}
}

// Figure7 generates the enterprise trace and produces the daily series for
// every (family, estimator) pair.
func Figure7(cfg Fig7Config) ([]Fig7Series, error) {
	cfg = cfg.withDefaults()
	infections := fig7Infections(cfg)
	genStage := cfg.Stages.Start("fig7:generate")
	tr, err := enterprise.Generate(enterprise.Config{
		Days:                   cfg.Days,
		Seed:                   cfg.Seed,
		BenignClients:          cfg.BenignClients,
		BenignLookupsPerClient: cfg.BenignLookupsPerClient,
		Granularity:            sim.Second,
		Infections:             infections,
	})
	genStage.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7: %w", err)
	}
	// The trace carries each family's symbolized pool cache; per-day
	// analysis below reuses it so matched records resolve by domain ID and
	// no day regenerates pools. The intern table is recycled once every
	// series is built.
	defer tr.Close()

	// The trace leaves Generate time-sorted, so per-day windows are sliced
	// with the binary-search fast path — the full-trace sortedness scan
	// inside Window ran once per (family, estimator, day) before, which at a
	// season-long horizon dominated the analysis loop.
	observed := tr.Observed
	if !observed.IsSorted() {
		observed.Sort()
	}

	var series []Fig7Series
	for _, inf := range infections {
		inf := inf
		primaryName := estimators.ForModel(inf.Spec).Name()
		// Each day is analysed on its own BotMeter instance so the per-day
		// loop can fan out across the worker pool without sharing lazily
		// built matcher state; every day maps to a distinct epoch, so no
		// cross-day matcher reuse is lost. One Analyze per day produces BOTH
		// of the family's series: the model-specific estimator as primary
		// and MT through the SecondOpinion path — matching and grouping the
		// day's records once instead of once per estimator. SecondOpinion
		// evaluates MT per epoch over the same windowed records in the same
		// order, so the MT series is byte-identical to a dedicated MT run.
		type dayEstimates struct{ Primary, Timing float64 }
		famStage := cfg.Stages.Start("fig7:analyze:" + inf.Spec.Name)
		estimates, err := runTrials(cfg.Workers, cfg.Obs, "fig7", tr.Days, func(day int) (dayEstimates, error) {
			bm, err := core.New(core.Config{
				Family:        inf.Spec,
				Seed:          inf.Seed,
				Pools:         tr.Pools[inf.Spec.Name],
				Granularity:   sim.Second,
				Estimator:     estimators.ForModel(inf.Spec),
				SecondOpinion: true,
				Stages:        cfg.Stages,
			})
			if err != nil {
				return dayEstimates{}, err
			}
			w := sim.Window{Start: sim.Time(day) * sim.Day, End: sim.Time(day+1) * sim.Day}
			land, err := bm.Analyze(observed.WindowSorted(w), w)
			if err != nil {
				return dayEstimates{}, fmt.Errorf("experiments: fig7 %s/%s day %d: %w",
					inf.Spec.Name, primaryName, day, err)
			}
			out := dayEstimates{Primary: land.Estimate(tr.LocalServer)}
			for _, s := range land.Servers {
				if s.Server == tr.LocalServer {
					out.Timing = s.SecondOpinion
					break
				}
			}
			return out, nil
		})
		famStage.End()
		if err != nil {
			return nil, err
		}
		primary := Fig7Series{
			Family:    inf.Spec.Name,
			Model:     inf.Spec.ModelName(),
			Estimator: primaryName,
			Truth:     tr.GroundTruth[inf.Spec.Name],
		}
		timing := Fig7Series{
			Family:    inf.Spec.Name,
			Model:     inf.Spec.ModelName(),
			Estimator: "MT",
			Truth:     tr.GroundTruth[inf.Spec.Name],
		}
		for _, est := range estimates {
			primary.Estimates = append(primary.Estimates, est.Primary)
			timing.Estimates = append(timing.Estimates, est.Timing)
		}
		series = append(series, primary, timing)
	}
	return series, nil
}

// TableIIRow summarises one (family, estimator) pair as mean ± std ARE —
// the paper's Table II format.
type TableIIRow struct {
	Family    string
	Model     string
	Estimator string
	Summary   stats.Summary
	// MeanCI is a 95% percentile-bootstrap interval on the mean ARE — a
	// reproducibility aid the paper's Table II lacks.
	MeanCI stats.CI
}

// TableII derives the accuracy table from Figure 7 series.
func TableII(series []Fig7Series) []TableIIRow {
	rows := make([]TableIIRow, 0, len(series))
	for _, s := range series {
		errs := s.Errors()
		rows = append(rows, TableIIRow{
			Family:    s.Family,
			Model:     s.Model,
			Estimator: s.Estimator,
			Summary:   stats.Summarize(errs),
			MeanCI:    stats.BootstrapMeanCI(errs, 0.95, 2000, hash64(s.Family+s.Estimator)),
		})
	}
	return rows
}
