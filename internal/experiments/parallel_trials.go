package experiments

import (
	"context"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/parallel"
)

// runTrials executes n independent trials of one artifact on the bounded
// worker pool (internal/parallel) and returns the per-trial results in
// trial order — the canonical aggregation order that makes workers=N
// byte-identical to workers=1 (per-trial seeds are derived from the trial
// index alone; see DESIGN.md §12).
//
// When reg is non-nil it exports
//
//	experiments_parallel_workers            (gauge: resolved pool size)
//	experiments_trials_total                (counter: completed trials)
//	experiments_trial_seconds{artifact=...} (histogram: per-trial latency)
//
// on the shared obs registry; nil instruments no-op, so uninstrumented
// runs pay one branch per trial.
func runTrials[T any](workers int, reg *obs.Registry, artifact string, n int, fn func(trial int) (T, error)) ([]T, error) {
	w := parallel.Workers(workers)
	reg.Gauge("experiments_parallel_workers").Set(float64(w))
	trialCtr := reg.Counter("experiments_trials_total")
	latency := reg.Histogram("experiments_trial_seconds", trialBuckets, "artifact", artifact)
	return parallel.Map(context.Background(), n, w, func(_ context.Context, i int) (T, error) {
		t0 := time.Now()
		v, err := fn(i)
		latency.ObserveDuration(time.Since(t0))
		trialCtr.Inc()
		return v, err
	})
}

// trialBuckets span microsecond-scale quick-config trials up to the
// minutes-scale Table-I-parameter trials.
var trialBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
