package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"botmeter/internal/sim"
)

// landscapeJSON is the stable machine-readable schema for pipelines that
// consume landscapes (SIEM ingestion, dashboards).
type landscapeJSON struct {
	Family         string               `json:"family"`
	Model          string               `json:"model"`
	Estimator      string               `json:"estimator"`
	WindowStartMS  int64                `json:"window_start_ms"`
	WindowEndMS    int64                `json:"window_end_ms"`
	Total          float64              `json:"total_estimated_population"`
	MatchedLookups int                  `json:"matched_lookups"`
	Ingest         *ingestStatsJSON     `json:"ingest,omitempty"`
	Servers        []serverEstimateJSON `json:"servers"`
}

type ingestStatsJSON struct {
	Ingested         uint64 `json:"ingested"`
	Matched          uint64 `json:"matched"`
	DroppedLate      uint64 `json:"dropped_late"`
	ReorderEvictions uint64 `json:"reorder_evictions"`
}

type serverEstimateJSON struct {
	Rank            int       `json:"rank"`
	Server          string    `json:"server"`
	Population      float64   `json:"estimated_population"`
	SecondOpinion   float64   `json:"second_opinion,omitempty"`
	MatchedLookups  int       `json:"matched_lookups"`
	DistinctDomains int       `json:"distinct_domains"`
	PerEpoch        []float64 `json:"per_epoch,omitempty"`
}

// WriteJSON serialises the landscape with a stable schema.
func (l *Landscape) WriteJSON(w io.Writer) error {
	out := landscapeJSON{
		Family:         l.Family,
		Model:          l.Model,
		Estimator:      l.Estimator,
		WindowStartMS:  int64(l.Window.Start),
		WindowEndMS:    int64(l.Window.End),
		Total:          l.Total,
		MatchedLookups: l.MatchedLookups,
	}
	if l.Ingest != nil {
		out.Ingest = &ingestStatsJSON{
			Ingested:         l.Ingest.Ingested,
			Matched:          l.Ingest.Matched,
			DroppedLate:      l.Ingest.DroppedLate,
			ReorderEvictions: l.Ingest.ReorderEvictions,
		}
	}
	for i, s := range l.Servers {
		out.Servers = append(out.Servers, serverEstimateJSON{
			Rank:            i + 1,
			Server:          s.Server,
			Population:      s.Population,
			SecondOpinion:   s.SecondOpinion,
			MatchedLookups:  s.MatchedLookups,
			DistinctDomains: s.DistinctDomains,
			PerEpoch:        s.PerEpoch,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: encode landscape: %w", err)
	}
	return nil
}

// WriteCSV serialises a landscape as CSV for downstream tooling
// (dashboards, ticketing integrations).
func (l *Landscape) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"rank", "server", "estimated_population", "second_opinion",
		"matched_lookups", "distinct_domains", "family", "model", "estimator",
		"window_start_ms", "window_end_ms",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: write header: %w", err)
	}
	for i, s := range l.Servers {
		row := []string{
			strconv.Itoa(i + 1),
			s.Server,
			strconv.FormatFloat(s.Population, 'f', 2, 64),
			strconv.FormatFloat(s.SecondOpinion, 'f', 2, 64),
			strconv.Itoa(s.MatchedLookups),
			strconv.Itoa(s.DistinctDomains),
			l.Family, l.Model, l.Estimator,
			strconv.FormatInt(int64(l.Window.Start), 10),
			strconv.FormatInt(int64(l.Window.End), 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Trend tracks per-server population estimates across consecutive analysis
// windows — the longitudinal view an operations team keeps day over day.
type Trend struct {
	Family  string
	Windows []sim.Window
	// Series maps server → per-window estimates (aligned with Windows).
	Series map[string][]float64
}

// NewTrend starts an empty trend for a family.
func NewTrend(family string) *Trend {
	return &Trend{Family: family, Series: make(map[string][]float64)}
}

// Add appends one landscape's estimates. Servers absent from a landscape
// record a zero for that window.
func (t *Trend) Add(l *Landscape) {
	t.Windows = append(t.Windows, l.Window)
	n := len(t.Windows)
	for _, s := range l.Servers {
		series, ok := t.Series[s.Server]
		if !ok {
			series = make([]float64, n-1)
		}
		t.Series[s.Server] = append(series, s.Population)
	}
	// Pad servers missing from this landscape.
	for server, series := range t.Series {
		if len(series) < n {
			t.Series[server] = append(series, 0)
		}
	}
}

// Growth returns the relative change of a server's estimate between the
// first and last window (0 if undefined) — a triage signal for spreading
// infections.
func (t *Trend) Growth(server string) float64 {
	series, ok := t.Series[server]
	if !ok || len(series) < 2 || series[0] == 0 {
		return 0
	}
	return (series[len(series)-1] - series[0]) / series[0]
}

// Heatmap renders the whole trend as a servers × windows intensity matrix,
// one shaded cell per (server, window), normalised per row. Rows are sorted
// by final-window estimate, hottest first — a terminal approximation of the
// "visual analytical component" the paper's future work calls for.
func (t *Trend) Heatmap() string {
	if len(t.Windows) == 0 || len(t.Series) == 0 {
		return ""
	}
	servers := make([]string, 0, len(t.Series))
	for s := range t.Series {
		servers = append(servers, s)
	}
	sort.Slice(servers, func(i, j int) bool {
		si, sj := t.Series[servers[i]], t.Series[servers[j]]
		li, lj := si[len(si)-1], sj[len(sj)-1]
		if li != lj {
			return li > lj
		}
		return servers[i] < servers[j]
	})
	shades := []rune(" ░▒▓█")
	var b strings.Builder
	fmt.Fprintf(&b, "%s — estimated bots per server per window (darker = more)\n", t.Family)
	for _, server := range servers {
		series := t.Series[server]
		max := 0.0
		for _, v := range series {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
		cells := make([]rune, len(series))
		for i, v := range series {
			idx := int(v / max * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			cells[i] = shades[idx]
		}
		fmt.Fprintf(&b, "%-12s |%s| peak %.0f\n", server, string(cells), max)
	}
	return b.String()
}

// Sparkline renders a server's series as a compact unicode bar chart.
func (t *Trend) Sparkline(server string) string {
	series, ok := t.Series[server]
	if !ok || len(series) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	out := make([]rune, len(series))
	for i, v := range series {
		idx := int(v / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		out[i] = bars[idx]
	}
	return string(out)
}
