// Package core assembles BotMeter itself (paper Figure 2): tapped at a
// border DNS server, it matches the incoming forwarded-lookup stream
// against the domains of a target DGA (as reported by a D³ front end),
// groups matches by forwarding local server, selects the analytical model
// fitting the DGA's taxonomy cell, estimates the active bot population
// behind every local server, and renders the resulting botnet landscape
// with remediation priorities.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/parallel"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Config configures one BotMeter deployment for one target DGA family
// (paper Figure 2, steps 2 and 6: pattern specification plus parameter
// configuration).
type Config struct {
	// Family is the target DGA.
	Family dga.Spec
	// Seed reconstructs the family's pools.
	Seed uint64
	// Pools, when non-nil, supplies the shared per-trial pool cache
	// (typically symbolized against a symtab intern table). The matcher and
	// the estimators then reuse one pool object per epoch — and take the
	// domain-ID fast paths for records that originated in-process — instead
	// of each regenerating pools from (Family, Seed). Nil keeps the
	// string-only behaviour; results are identical either way.
	Pools *dga.PoolCache
	// EpochLen is δe (default one day).
	EpochLen sim.Time
	// NegativeTTL is the local servers' negative-cache TTL δl (default 2 h).
	NegativeTTL sim.Time
	// Granularity is the vantage point's timestamp granularity.
	Granularity sim.Time
	// Estimator overrides the taxonomy-based model selection when non-nil.
	Estimator estimators.Estimator
	// Detection models the D³ front end; nil means perfect pool knowledge.
	Detection *d3.Window
	// SecondOpinion additionally runs the Timing estimator on every server
	// (the paper evaluates MT alongside the model-specific estimator).
	SecondOpinion bool
	// Workers bounds the per-server estimation pool inside Analyze
	// (0 = one worker per CPU capped at 16, 1 = sequential). Servers are
	// independent and results are collected in sorted-server order, so any
	// value yields identical landscapes.
	Workers int
	// Stages, when non-nil, records per-stage wall/alloc timings of every
	// Analyze call ("match", "estimate", plus per-estimator wall times) —
	// the source of `botmeter -verbose` and `benchgen -timings` tables.
	Stages *obs.StageSet
}

func (c Config) withDefaults() Config {
	if c.EpochLen <= 0 {
		c.EpochLen = sim.Day
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 2 * sim.Hour
	}
	if c.Estimator == nil {
		c.Estimator = estimators.ForModel(c.Family)
	}
	c.Estimator = estimators.Instrumented(c.Estimator, c.Stages)
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Family.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Detection != nil {
		if err := c.Detection.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// BotMeter is the analysis pipeline bound to one configuration. A BotMeter
// parallelises internally across forwarding servers; the per-epoch matcher
// cache is concurrency-safe (EpochMatchers), so Analyze may also be called
// from multiple goroutines, though per-call estimator state still makes
// one instance per goroutine the simpler deployment.
type BotMeter struct {
	cfg Config

	matchers *EpochMatchers
}

// New builds a BotMeter instance.
func New(cfg Config) (*BotMeter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &BotMeter{
		cfg:      cfg,
		matchers: NewEpochMatchers(cfg.Family, cfg.Seed, cfg.Detection, cfg.Pools),
	}, nil
}

// EstimatorName reports the selected analytical model.
func (bm *BotMeter) EstimatorName() string { return bm.cfg.Estimator.Name() }

// ServerEstimate is the assessment for one local DNS server.
type ServerEstimate struct {
	// Server is the forwarding server's identifier.
	Server string
	// Population is the estimated number of active bots behind the server
	// (averaged per epoch across the analysis window).
	Population float64
	// SecondOpinion is the Timing estimator's figure when enabled (NaN
	// semantics avoided: zero when disabled).
	SecondOpinion float64
	// MatchedLookups counts DGA-attributed forwarded lookups.
	MatchedLookups int
	// DistinctDomains counts distinct DGA domains seen from this server.
	DistinctDomains int
	// PerEpoch holds the per-epoch estimates underlying Population.
	PerEpoch []float64
}

// Landscape is the chart of a DGA-botnet across the network — the paper's
// deliverable. Servers are sorted by estimated population, descending: the
// remediation priority order.
type Landscape struct {
	Family    string
	Model     string
	Estimator string
	Window    sim.Window
	Servers   []ServerEstimate
	// Total is the summed population estimate across servers.
	Total float64
	// MatchedLookups counts all DGA-attributed lookups in the window.
	MatchedLookups int
	// Ingest, when non-nil, carries the streaming engine's delivery tallies
	// so silent data loss (late drops, reorder-buffer evictions) is visible
	// next to the chart it degraded. Batch analysis sees every record by
	// construction and leaves it nil.
	Ingest *IngestStats
}

// IngestStats is the delivery tally of a streamed landscape (the subset of
// the engine's counters an operator needs to judge the chart's fidelity).
type IngestStats struct {
	Ingested         uint64
	Matched          uint64
	DroppedLate      uint64
	ReorderEvictions uint64
}

// Analyze charts the landscape from an observable dataset over a window.
func (bm *BotMeter) Analyze(obs trace.Observed, w sim.Window) (*Landscape, error) {
	if w.Len() <= 0 {
		return nil, fmt.Errorf("core: empty analysis window")
	}
	cfg := bm.cfg
	// Normalise the estimator config once: every per-(server, epoch)
	// EstimateEpoch below then takes the fast path instead of re-running
	// defaults + validation per cell.
	estCfg, err := estimators.Config{
		Spec:        cfg.Family,
		Seed:        cfg.Seed,
		EpochLen:    cfg.EpochLen,
		NegativeTTL: cfg.NegativeTTL,
		Granularity: cfg.Granularity,
		Detection:   cfg.Detection,
		Pools:       cfg.Pools,
	}.Normalized()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Step 3-4: match the stream per epoch (pools rotate across epochs).
	// Records arrive overwhelmingly in epoch order, so the last epoch's
	// matcher is memoised locally — the common case skips EpochMatchers.For's
	// mutex entirely.
	matchStage := cfg.Stages.Start("match")
	firstEpoch := int(w.Start / cfg.EpochLen)
	lastEpoch := int((w.End - 1) / cfg.EpochLen)
	// matched accumulates through a chunked builder: matches can be a small
	// fraction of the window (one family's lookups inside mixed traffic),
	// so presizing to len(obs) allocated and zeroed a window-sized array
	// per Analyze call, while plain append-growth re-copies the prefix
	// repeatedly when most records match. Sortedness is tracked during the
	// same pass — it decides whether the per-epoch windowing below can
	// binary-search instead of re-scanning.
	var matchedB trace.Builder
	matchedSorted := true
	var lastT sim.Time
	var lastMatcher *EpochMatcher
	lastMatcherEpoch := 0
	for _, rec := range obs {
		if !w.Contains(rec.T) {
			continue
		}
		epoch := int(rec.T / cfg.EpochLen)
		if lastMatcher == nil || epoch != lastMatcherEpoch {
			lastMatcher = bm.matchers.For(epoch)
			lastMatcherEpoch = epoch
		}
		if lastMatcher.MatchRecord(rec) {
			if rec.T < lastT {
				matchedSorted = false
			}
			lastT = rec.T
			matchedB.Append(rec)
		}
	}
	matched := matchedB.Build()
	matchStage.End()

	// Step 5-7: per-server estimation. Servers are independent, so they
	// are estimated concurrently with a bounded worker pool; the pool size
	// follows GOMAXPROCS and each worker owns its loop state (the shared
	// estimator instances synchronise their internal caches themselves).
	timing := estimators.Instrumented(estimators.NewTiming(), cfg.Stages)
	land := &Landscape{
		Family:         cfg.Family.Name,
		Model:          cfg.Family.ModelName(),
		Estimator:      cfg.Estimator.Name(),
		Window:         w,
		MatchedLookups: len(matched),
	}
	byServer := matched.ByServer()
	servers := make([]string, 0, len(byServer))
	for s := range byServer {
		servers = append(servers, s)
	}
	sort.Strings(servers)

	estStage := cfg.Stages.Start("estimate")
	results, err := parallel.Map(context.Background(), len(servers), bm.workers(),
		func(_ context.Context, i int) (ServerEstimate, error) {
			est, err := bm.estimateServer(servers[i], byServer[servers[i]], w, firstEpoch, lastEpoch, matchedSorted, estCfg, timing)
			if err != nil {
				return est, fmt.Errorf("core: %s: %w", servers[i], err)
			}
			return est, nil
		})
	estStage.End()
	if err != nil {
		return nil, err
	}
	for _, est := range results {
		land.Servers = append(land.Servers, est)
		land.Total += est.Population
	}
	sort.Slice(land.Servers, func(i, j int) bool {
		if land.Servers[i].Population != land.Servers[j].Population {
			return land.Servers[i].Population > land.Servers[j].Population
		}
		return land.Servers[i].Server < land.Servers[j].Server
	})
	return land, nil
}

// estimateServer produces one server's assessment. sorted reports whether
// serverObs is in non-decreasing timestamp order (ByServer preserves the
// matched scan order, so Analyze knows this from the match pass); it routes
// the per-epoch windowing through the binary-search fast path.
func (bm *BotMeter) estimateServer(server string, serverObs trace.Observed, w sim.Window, firstEpoch, lastEpoch int, sorted bool, estCfg estimators.Config, timing estimators.Estimator) (ServerEstimate, error) {
	cfg := bm.cfg
	est := ServerEstimate{
		Server:          server,
		MatchedLookups:  len(serverObs),
		DistinctDomains: serverObs.DistinctDomainCount(),
	}
	var total float64
	epochs := 0
	for ep := firstEpoch; ep <= lastEpoch; ep++ {
		ew := sim.Window{Start: sim.Time(ep) * cfg.EpochLen, End: sim.Time(ep+1) * cfg.EpochLen}
		var epochObs trace.Observed
		if sorted {
			epochObs = serverObs.WindowSorted(ew)
		} else {
			epochObs = serverObs.Window(ew)
		}
		v, err := cfg.Estimator.EstimateEpoch(epochObs, ep, estCfg)
		if err != nil {
			return est, fmt.Errorf("epoch %d: %w", ep, err)
		}
		est.PerEpoch = append(est.PerEpoch, v)
		total += v
		epochs++
	}
	if epochs > 0 {
		est.Population = total / float64(epochs)
	}
	if cfg.SecondOpinion {
		v, err := estimators.EstimateWindow(timing, serverObs, w, estCfg)
		if err != nil {
			return est, fmt.Errorf("second opinion: %w", err)
		}
		est.SecondOpinion = v
	}
	return est, nil
}

// workers resolves the per-server estimation pool size: the configured
// Workers when positive, else one worker per CPU capped at 16 (the cap
// keeps goroutine fan-out bounded on very wide hosts; server counts are
// typically small).
func (bm *BotMeter) workers() int {
	if bm.cfg.Workers > 0 {
		return bm.cfg.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// String renders the landscape as a fixed-width report.
func (l *Landscape) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BotMeter landscape — family %s (%s), estimator %s\n",
		l.Family, l.Model, l.Estimator)
	fmt.Fprintf(&b, "window %v … %v, %d matched lookups\n",
		l.Window.Start, l.Window.End, l.MatchedLookups)
	fmt.Fprintf(&b, "%-4s %-12s %12s %10s %10s\n",
		"rank", "server", "est. bots", "lookups", "domains")
	for i, s := range l.Servers {
		fmt.Fprintf(&b, "%-4d %-12s %12.1f %10d %10d\n",
			i+1, s.Server, s.Population, s.MatchedLookups, s.DistinctDomains)
	}
	fmt.Fprintf(&b, "total estimated population: %.1f\n", l.Total)
	return b.String()
}

// Top returns the k highest-priority servers (fewer if not available).
func (l *Landscape) Top(k int) []ServerEstimate {
	if k > len(l.Servers) {
		k = len(l.Servers)
	}
	out := make([]ServerEstimate, k)
	copy(out, l.Servers[:k])
	return out
}

// Estimate returns the population estimate for one server (0 if the server
// produced no matched traffic).
func (l *Landscape) Estimate(server string) float64 {
	for _, s := range l.Servers {
		if s.Server == server {
			return s.Population
		}
	}
	return 0
}
