package core

import (
	"bytes"
	"strings"
	"testing"

	"botmeter/internal/sim"
)

func TestWriteHTMLBasic(t *testing.T) {
	var buf bytes.Buffer
	err := HTMLReport{Landscape: sampleLandscape()}.WriteHTML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html", "newGoZ", "MB", "local-01", "40.5",
		"remediation priority",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// No trend supplied: no sparkline column.
	if strings.Contains(out, "<svg") {
		t.Error("unexpected sparklines without a trend")
	}
}

func TestWriteHTMLWithTrend(t *testing.T) {
	tr := NewTrend("newGoZ")
	tr.Windows = make([]sim.Window, 3)
	tr.Series["local-01"] = []float64{10, 20, 40.5}
	tr.Series["local-00"] = []float64{7, 7, 7.2}
	var buf bytes.Buffer
	err := HTMLReport{Landscape: sampleLandscape(), Trend: tr}.WriteHTML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") {
		t.Error("sparklines missing")
	}
	if !strings.Contains(out, "305%") {
		t.Errorf("growth column missing: want 305%% for local-01")
	}
}

func TestWriteHTMLEscapesHostileNames(t *testing.T) {
	l := sampleLandscape()
	l.Servers[0].Server = `<script>alert(1)</script>`
	var buf bytes.Buffer
	if err := (HTMLReport{Landscape: l}).WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("server name not escaped")
	}
}

func TestWriteHTMLNilLandscape(t *testing.T) {
	if err := (HTMLReport{}).WriteHTML(&bytes.Buffer{}); err == nil {
		t.Error("nil landscape should error")
	}
}
