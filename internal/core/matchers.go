package core

import (
	"sync"

	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/matcher"
)

// EpochMatchers builds and caches the per-epoch domain matchers of one
// target DGA (paper Figure 2, steps 2–4): the family's pool for the epoch,
// optionally narrowed to what the D³ front end detected. It is safe for
// concurrent use, which lets the streaming engine's ingest shards share
// one instance — pool reconstruction is the expensive part and must happen
// once per epoch, not once per shard.
type EpochMatchers struct {
	family    dga.Spec
	seed      uint64
	detection *d3.Window

	mu      sync.Mutex
	byEpoch map[int]*matcher.Set
}

// NewEpochMatchers builds the matcher cache. A nil detection window means
// perfect pool knowledge.
func NewEpochMatchers(family dga.Spec, seed uint64, detection *d3.Window) *EpochMatchers {
	return &EpochMatchers{
		family:    family,
		seed:      seed,
		detection: detection,
		byEpoch:   make(map[int]*matcher.Set),
	}
}

// For returns the matcher for one epoch, building it on first use. The
// returned Set must be treated as read-only; concurrent Match calls are
// safe because the set is never mutated after construction.
func (em *EpochMatchers) For(epoch int) *matcher.Set {
	em.mu.Lock()
	defer em.mu.Unlock()
	if m, ok := em.byEpoch[epoch]; ok {
		return m
	}
	pool := em.family.Pool.PoolFor(em.seed, epoch)
	var domains []string
	if em.detection != nil {
		rep := em.detection.Detect(epoch, pool)
		domains = rep.All()
	} else {
		domains = pool.Domains
	}
	m := matcher.NewSet(em.family.Name, domains)
	em.byEpoch[epoch] = m
	return m
}

// Epochs reports how many epoch matchers are currently cached.
func (em *EpochMatchers) Epochs() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	return len(em.byEpoch)
}
