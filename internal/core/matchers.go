package core

import (
	"sync"

	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/matcher"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// EpochMatchers builds and caches the per-epoch domain matchers of one
// target DGA (paper Figure 2, steps 2–4): the family's pool for the epoch,
// optionally narrowed to what the D³ front end detected. It is safe for
// concurrent use, which lets the streaming engine's ingest shards share
// one instance — pool reconstruction is the expensive part and must happen
// once per epoch, not once per shard.
//
// When constructed over a dga.PoolCache whose pools are symbolized
// (interned against a symtab table), each epoch additionally gets an ID
// bitset matcher: records that originated in-process carry interned IDs and
// match in O(1) without string hashing, while the exact string Set is built
// lazily, only if a record without an ID (disk traces, benign traffic)
// actually arrives.
type EpochMatchers struct {
	family    dga.Spec
	seed      uint64
	detection *d3.Window
	pools     *dga.PoolCache

	mu      sync.Mutex
	byEpoch map[int]*EpochMatcher
}

// NewEpochMatchers builds the matcher cache. A nil detection window means
// perfect pool knowledge. pools, when non-nil, supplies shared (and, when
// its table is set, symbolized) pools so the matcher, the estimators and
// the simulator all reuse one pool object per epoch; nil falls back to
// regenerating pools from the family spec.
func NewEpochMatchers(family dga.Spec, seed uint64, detection *d3.Window, pools *dga.PoolCache) *EpochMatchers {
	return &EpochMatchers{
		family:    family,
		seed:      seed,
		detection: detection,
		pools:     pools,
		byEpoch:   make(map[int]*EpochMatcher),
	}
}

// EpochMatcher matches one epoch's records. Records carrying an interned
// symtab ID take the bitset fast path; everything else goes through the
// exact string set, which is built on first need.
type EpochMatcher struct {
	ids *matcher.IDMatcher // nil when the epoch's pool is not symbolized

	setOnce  sync.Once
	set      *matcher.Set
	buildSet func() *matcher.Set
}

// MatchRecord reports whether the record is attributed to the DGA.
func (m *EpochMatcher) MatchRecord(rec trace.ObservedRecord) bool {
	if m.ids != nil && rec.ID != symtab.None {
		return m.ids.MatchID(rec.ID)
	}
	return m.Set().Match(rec.Domain)
}

// Match reports whether a bare domain string is attributed to the DGA.
func (m *EpochMatcher) Match(domain string) bool { return m.Set().Match(domain) }

// Set returns the epoch's exact string matcher, building it on first use.
func (m *EpochMatcher) Set() *matcher.Set {
	m.setOnce.Do(func() { m.set = m.buildSet() })
	return m.set
}

// For returns the matcher for one epoch, building it on first use. The
// returned matcher must be treated as read-only; concurrent MatchRecord
// calls are safe because it is never mutated after construction.
func (em *EpochMatchers) For(epoch int) *EpochMatcher {
	em.mu.Lock()
	defer em.mu.Unlock()
	if m, ok := em.byEpoch[epoch]; ok {
		return m
	}
	var pool *dga.Pool
	if em.pools != nil {
		pool = em.pools.For(epoch)
	} else {
		pool = em.family.Pool.PoolFor(em.seed, epoch)
	}
	m := &EpochMatcher{}
	if em.detection != nil {
		rep := em.detection.Detect(epoch, pool)
		if pool.IDs != nil {
			// The bitset covers the detected pool positions; collision
			// domains are synthetic non-pool names that never carry IDs, so
			// they are handled (identically to the string path) by the lazy
			// set below.
			ids := make([]symtab.ID, len(rep.DetectedPositions))
			for i, pos := range rep.DetectedPositions {
				ids[i] = pool.IDs[pos]
			}
			m.ids = matcher.NewIDMatcher(em.family.Name, ids)
		}
		m.buildSet = func() *matcher.Set { return matcher.NewSet(em.family.Name, rep.All()) }
	} else {
		if pool.IDs != nil {
			m.ids = matcher.NewIDMatcher(em.family.Name, pool.IDs)
		}
		m.buildSet = func() *matcher.Set { return matcher.NewSet(em.family.Name, pool.Domains) }
	}
	em.byEpoch[epoch] = m
	return m
}

// Epochs reports how many epoch matchers are currently cached.
func (em *EpochMatchers) Epochs() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	return len(em.byEpoch)
}
