package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"botmeter/internal/botnet"
	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

// simulate runs a botnet and returns the observable trace plus ground
// truth.
func simulate(t *testing.T, spec dga.Spec, seed uint64, botsPerServer map[string]int, w sim.Window) (trace.Observed, *botnet.Result) {
	t.Helper()
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: len(botsPerServer),
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	r, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          seed,
		BotsPerServer: botsPerServer,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return net.Border.Observed(), res
}

func smallAU() dga.Spec {
	return dga.Spec{
		Name:          "mini-AU",
		Pool:          dga.DrainReplenish{NX: 198, C2: 2, Gen: dga.DefaultGenerator},
		Barrel:        dga.Uniform{},
		ThetaQ:        200,
		QueryInterval: 500 * sim.Millisecond,
	}
}

func smallAR() dga.Spec {
	return dga.Spec{
		Name:          "mini-AR",
		Pool:          dga.DrainReplenish{NX: 995, C2: 5, Gen: dga.DefaultGenerator},
		Barrel:        dga.RandomCut{},
		ThetaQ:        100,
		QueryInterval: sim.Second,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{Family: smallAU(), Detection: &d3.Window{MissRate: -1}}); err == nil {
		t.Error("invalid detection window should fail")
	}
	bm, err := New(Config{Family: smallAU(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bm.EstimatorName() != "MP" {
		t.Errorf("AU should auto-select MP, got %s", bm.EstimatorName())
	}
}

func TestAnalyzeEmptyWindow(t *testing.T) {
	bm, err := New(Config{Family: smallAU(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bm.Analyze(nil, sim.Window{}); err == nil {
		t.Error("empty window should error")
	}
}

func TestAnalyzeAUPopulation(t *testing.T) {
	seed := uint64(77)
	w := sim.Window{Start: 0, End: sim.Day}
	bots := map[string]int{"local-00": 64}
	obs, res := simulate(t, smallAU(), seed, bots, w)
	bm, err := New(Config{Family: smallAU(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(res.ActiveBots["local-00"][0])
	got := land.Estimate("local-00")
	if are := stats.ARE(got, truth); are > 0.5 {
		t.Errorf("MP estimate %v vs truth %v (ARE %v)", got, truth, are)
	}
	if land.Estimator != "MP" || land.Model != "AU" {
		t.Errorf("landscape metadata: %s/%s", land.Model, land.Estimator)
	}
}

func TestAnalyzeARPopulation(t *testing.T) {
	seed := uint64(88)
	w := sim.Window{Start: 0, End: sim.Day}
	bots := map[string]int{"local-00": 64}
	obs, res := simulate(t, smallAR(), seed, bots, w)
	bm, err := New(Config{Family: smallAR(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(res.ActiveBots["local-00"][0])
	got := land.Estimate("local-00")
	if are := stats.ARE(got, truth); are > 0.4 {
		t.Errorf("MB estimate %v vs truth %v (ARE %v)", got, truth, are)
	}
}

func TestLandscapeRanking(t *testing.T) {
	seed := uint64(99)
	w := sim.Window{Start: 0, End: sim.Day}
	bots := map[string]int{"local-00": 8, "local-01": 96, "local-02": 32}
	obs, _ := simulate(t, smallAR(), seed, bots, w)
	bm, err := New(Config{Family: smallAR(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(land.Servers) != 3 {
		t.Fatalf("servers in landscape: %d", len(land.Servers))
	}
	// Remediation priority: the heavily infected server first.
	if land.Servers[0].Server != "local-01" {
		t.Errorf("top priority = %s, want local-01", land.Servers[0].Server)
	}
	if land.Servers[len(land.Servers)-1].Server != "local-00" {
		t.Errorf("lowest priority = %s, want local-00", land.Servers[len(land.Servers)-1].Server)
	}
	top := land.Top(2)
	if len(top) != 2 || top[0].Server != "local-01" {
		t.Errorf("Top(2) = %+v", top)
	}
	if land.Total <= 0 {
		t.Error("total population should be positive")
	}
	// Unknown server estimate is 0.
	if land.Estimate("local-99") != 0 {
		t.Error("unknown server should estimate 0")
	}
}

func TestAnalyzeFiltersBenignTraffic(t *testing.T) {
	seed := uint64(11)
	w := sim.Window{Start: 0, End: sim.Day}
	obs, _ := simulate(t, smallAR(), seed, map[string]int{"local-00": 16}, w)
	// Inject benign lookups that must not be matched.
	noisy := make(trace.Observed, 0, len(obs)+100)
	noisy = append(noisy, obs...)
	for i := 0; i < 100; i++ {
		noisy = append(noisy, trace.ObservedRecord{
			T: sim.Time(i) * sim.Minute, Server: "local-00",
			Domain: "www.example.org",
		})
	}
	bm, err := New(Config{Family: smallAR(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := bm.Analyze(noisy, w)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Estimate("local-00") != dirty.Estimate("local-00") {
		t.Errorf("benign noise changed the estimate: %v vs %v",
			clean.Estimate("local-00"), dirty.Estimate("local-00"))
	}
	if dirty.MatchedLookups != clean.MatchedLookups {
		t.Errorf("benign lookups were matched: %d vs %d",
			dirty.MatchedLookups, clean.MatchedLookups)
	}
}

func TestAnalyzeWithDetectionWindow(t *testing.T) {
	seed := uint64(22)
	w := sim.Window{Start: 0, End: sim.Day}
	obs, res := simulate(t, smallAR(), seed, map[string]int{"local-00": 64}, w)
	bm, err := New(Config{
		Family:    smallAR(),
		Seed:      seed,
		Detection: &d3.Window{MissRate: 0.3, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(res.ActiveBots["local-00"][0])
	got := land.Estimate("local-00")
	// Degraded but still in the right ballpark (Fig 6(e) shows ARE growing
	// to ≈0.25 at 30% misses for MB; leave generous headroom).
	if are := stats.ARE(got, truth); are > 0.8 {
		t.Errorf("estimate with 30%% misses: %v vs truth %v (ARE %v)", got, truth, are)
	}
	if got <= 0 {
		t.Error("estimate should remain positive under misses")
	}
}

func TestAnalyzeWithCollisionNoise(t *testing.T) {
	// Collision domains (benign names D³ wrongly attributes to the DGA)
	// enter the matcher but, having no pool position, must not perturb the
	// Bernoulli estimate — the paper's noise-resilience claim.
	seed := uint64(66)
	w := sim.Window{Start: 0, End: sim.Day}
	obs, res := simulate(t, smallAR(), seed, map[string]int{"local-00": 32}, w)
	bm, err := New(Config{
		Family:    smallAR(),
		Seed:      seed,
		Detection: &d3.Window{Collisions: 10, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inject lookups for the collision domains from benign hosts.
	noisy := append(trace.Observed{}, obs...)
	for i := 0; i < 10; i++ {
		noisy = append(noisy, trace.ObservedRecord{
			T:      sim.Time(i) * sim.Hour,
			Server: "local-00",
			Domain: fmt.Sprintf("benign-collision-0-%d.com", i),
		})
	}
	land, err := bm.Analyze(noisy, w)
	if err != nil {
		t.Fatal(err)
	}
	// Collision lookups ARE matched (they are in the detected list)...
	if land.MatchedLookups <= len(obs.FilterDomains(func(string) bool { return true }))-len(obs) {
		t.Log("collision lookups not matched — acceptable only if matcher drops them")
	}
	// ...but the estimate stays anchored to the true population.
	truth := float64(res.ActiveBots["local-00"][0])
	if are := stats.ARE(land.Estimate("local-00"), truth); are > 0.4 {
		t.Errorf("collision noise perturbed MB: estimate %v vs truth %v", land.Estimate("local-00"), truth)
	}
}

func TestAnalyzeSecondOpinion(t *testing.T) {
	seed := uint64(33)
	w := sim.Window{Start: 0, End: sim.Day}
	obs, _ := simulate(t, smallAU(), seed, map[string]int{"local-00": 16}, w)
	bm, err := New(Config{Family: smallAU(), Seed: seed, SecondOpinion: true})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(land.Servers) == 0 || land.Servers[0].SecondOpinion <= 0 {
		t.Errorf("second opinion missing: %+v", land.Servers)
	}
}

func TestAnalyzeMultiEpoch(t *testing.T) {
	seed := uint64(44)
	w := sim.Window{Start: 0, End: 2 * sim.Day}
	obs, res := simulate(t, smallAR(), seed, map[string]int{"local-00": 32}, w)
	bm, err := New(Config{Family: smallAR(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(land.Servers) != 1 {
		t.Fatalf("servers = %d", len(land.Servers))
	}
	if got := len(land.Servers[0].PerEpoch); got != 2 {
		t.Errorf("per-epoch estimates = %d, want 2", got)
	}
	truthAvg := float64(res.ActiveBots["local-00"][0]+res.ActiveBots["local-00"][1]) / 2
	if are := stats.ARE(land.Servers[0].Population, truthAvg); are > 0.4 {
		t.Errorf("multi-epoch estimate %v vs truth %v", land.Servers[0].Population, truthAvg)
	}
}

func TestAnalyzeEstimatorOverride(t *testing.T) {
	bm, err := New(Config{Family: smallAU(), Seed: 1, Estimator: estimators.NewTiming()})
	if err != nil {
		t.Fatal(err)
	}
	if bm.EstimatorName() != "MT" {
		t.Errorf("override ignored: %s", bm.EstimatorName())
	}
}

func TestLandscapeString(t *testing.T) {
	seed := uint64(55)
	w := sim.Window{Start: 0, End: sim.Day}
	obs, _ := simulate(t, smallAR(), seed, map[string]int{"local-00": 16}, w)
	bm, err := New(Config{Family: smallAR(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	s := land.String()
	for _, want := range []string{"mini-AR", "MB", "local-00", "total estimated population"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if math.IsNaN(land.Total) {
		t.Error("NaN total")
	}
}
