package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"botmeter/internal/sim"
)

func sampleLandscape() *Landscape {
	return &Landscape{
		Family:    "newGoZ",
		Model:     "AR",
		Estimator: "MB",
		Window:    sim.Window{Start: 0, End: sim.Day},
		Servers: []ServerEstimate{
			{Server: "local-01", Population: 40.5, MatchedLookups: 1000, DistinctDomains: 800},
			{Server: "local-00", Population: 7.2, MatchedLookups: 150, DistinctDomains: 120},
		},
		Total:          47.7,
		MatchedLookups: 1150,
	}
}

func TestLandscapeWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLandscape().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "1,local-01,40.50") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "newGoZ,AR,MB") {
		t.Errorf("row 2 missing metadata: %q", lines[2])
	}
}

func TestLandscapeWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLandscape().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Family  string  `json:"family"`
		Total   float64 `json:"total_estimated_population"`
		Servers []struct {
			Rank   int    `json:"rank"`
			Server string `json:"server"`
		} `json:"servers"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Family != "newGoZ" || decoded.Total != 47.7 {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.Servers) != 2 || decoded.Servers[0].Rank != 1 || decoded.Servers[0].Server != "local-01" {
		t.Errorf("servers = %+v", decoded.Servers)
	}
}

func TestTrendAddAndGrowth(t *testing.T) {
	tr := NewTrend("newGoZ")
	l1 := sampleLandscape()
	tr.Add(l1)
	l2 := sampleLandscape()
	l2.Window = sim.Window{Start: sim.Day, End: 2 * sim.Day}
	l2.Servers[0].Population = 81 // local-01 doubles
	l2.Servers = l2.Servers[:1]   // local-00 disappears on day 2
	tr.Add(l2)

	if got := tr.Growth("local-01"); got != 1.0 {
		t.Errorf("growth = %v, want 1.0 (doubled)", got)
	}
	if got := tr.Growth("missing"); got != 0 {
		t.Errorf("growth of unknown server = %v", got)
	}
	// local-00's series padded with 0 for the second window.
	if s := tr.Series["local-00"]; len(s) != 2 || s[1] != 0 {
		t.Errorf("padded series = %v", s)
	}
}

func TestTrendLateJoinerBackfilled(t *testing.T) {
	tr := NewTrend("x")
	l1 := sampleLandscape()
	l1.Servers = l1.Servers[:1] // only local-01 on day 1
	tr.Add(l1)
	l2 := sampleLandscape() // both servers on day 2
	tr.Add(l2)
	if s := tr.Series["local-00"]; len(s) != 2 || s[0] != 0 {
		t.Errorf("late joiner series = %v, want leading 0", s)
	}
}

func TestTrendHeatmap(t *testing.T) {
	tr := NewTrend("fam")
	tr.Windows = make([]sim.Window, 3)
	tr.Series["hot"] = []float64{10, 50, 100}
	tr.Series["cold"] = []float64{1, 2, 1}
	hm := tr.Heatmap()
	lines := strings.Split(strings.TrimSpace(hm), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap:\n%s", hm)
	}
	// Hottest (by final estimate) row first.
	if !strings.HasPrefix(lines[1], "hot") {
		t.Errorf("row order: %q", lines[1])
	}
	if !strings.Contains(lines[1], "█") {
		t.Errorf("hot row missing full shade: %q", lines[1])
	}
	if NewTrend("x").Heatmap() != "" {
		t.Error("empty trend should render empty heatmap")
	}
}

func TestTrendSparkline(t *testing.T) {
	tr := NewTrend("x")
	tr.Series["s"] = []float64{0, 5, 10}
	tr.Windows = make([]sim.Window, 3)
	line := tr.Sparkline("s")
	if len([]rune(line)) != 3 {
		t.Fatalf("sparkline = %q", line)
	}
	runes := []rune(line)
	if runes[0] >= runes[1] || runes[1] >= runes[2] {
		t.Errorf("sparkline not increasing: %q", line)
	}
	if tr.Sparkline("missing") != "" {
		t.Error("unknown server should give empty sparkline")
	}
	// All-zero series must not divide by zero.
	tr.Series["z"] = []float64{0, 0}
	if got := tr.Sparkline("z"); len([]rune(got)) != 2 {
		t.Errorf("zero series sparkline = %q", got)
	}
}
