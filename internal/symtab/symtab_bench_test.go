package symtab

import (
	"fmt"
	"testing"
)

// BenchmarkInternTable measures the intern kernel in its three regimes:
// hit (steady-state re-intern), miss (fresh strings into a warm table) and
// resize (growth from the initial table through several doublings).
func BenchmarkInternTable(b *testing.B) {
	const n = 50000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("d%05x.dga.example.com", i)
	}

	b.Run("hit", func(b *testing.B) {
		tab := New()
		for _, k := range keys {
			tab.Intern(k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.Intern(keys[i%n])
		}
	})

	b.Run("miss", func(b *testing.B) {
		tab := New()
		fresh := make([]string, 0, b.N)
		for i := 0; i < b.N; i++ {
			fresh = append(fresh, fmt.Sprintf("m%08x.dga.example.com", i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.Intern(fresh[i])
		}
	})

	b.Run("resize", func(b *testing.B) {
		b.ReportAllocs()
		tab := Get()
		for i := 0; i < b.N; i++ {
			if i%n == 0 {
				tab.Reset()
			}
			tab.Intern(keys[i%n])
		}
		tab.Release()
	})
}

func BenchmarkLookup(b *testing.B) {
	const n = 50000
	tab := New()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("d%05x.dga.example.com", i)
		tab.Intern(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(keys[i%n])
	}
}
