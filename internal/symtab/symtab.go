// Package symtab provides a per-trial domain intern table mapping domain
// strings to dense uint32 IDs.
//
// BotMeter's estimators never depend on domain *content* — only on set
// membership, pool position and timing (DESIGN.md §6) — so the per-trial hot
// path (simulate → cache → match → estimate) can operate on compact integer
// IDs and keep heap-allocated strings at the I/O boundary (trace emission,
// artifact rendering). A Table interns every domain a trial can produce
// (pool domains, C2 names) exactly once; all downstream structures — pool
// position arrays, the DNS cache's open-addressed fast path, the matcher
// bitset — index by ID.
//
// IDs are dense and allocation-ordered: the first interned string gets ID 1,
// the second ID 2, and so on. ID 0 is the reserved sentinel None meaning
// "unknown / external": records read back from disk traces, benign
// enterprise lookups and externally-injected cache names all carry ID 0 and
// take the pre-existing string paths, so behaviour is unchanged for anything
// the table has not seen.
//
// Tables are recycled across trials via a package-level sync.Pool (Get /
// Release), mirroring dnssim's entry-map pool, so steady-state allocations do
// not grow with trial count.
//
// The table is internally mutex-guarded: interning happens at pool
// construction time (dga.PoolCache funnels every PoolFor through one table)
// which may be reached concurrently from per-server estimation goroutines,
// but never from per-record hot loops — those only read pre-resolved IDs.
package symtab

import (
	"fmt"
	"sync"
)

// ID is a dense interned-domain identifier. The zero value is None.
type ID uint32

// None is the reserved "unknown / external" sentinel. Strings are never
// assigned ID 0; a record carrying None falls back to string-keyed paths.
const None ID = 0

const (
	// initialSlots is the starting size of the open-addressed index.
	// Must be a power of two.
	initialSlots = 1024
	// maxLoadNum/maxLoadDen: grow when len > slots*3/4.
	maxLoadNum = 3
	maxLoadDen = 4
)

// Table interns strings to dense IDs. The zero value is NOT ready for use;
// call New or Get.
type Table struct {
	mu sync.Mutex
	// strs[i] holds the string for ID i+1 (IDs are 1-based, dense).
	strs []string
	// idx is the open-addressed FNV-1a index. Each slot stores an ID
	// (0 = empty). Size is always a power of two; mask = len(idx)-1.
	idx  []ID
	mask uint32
}

// New returns an empty table ready for use.
func New() *Table {
	t := &Table{}
	t.init(initialSlots)
	return t
}

func (t *Table) init(slots int) {
	t.idx = make([]ID, slots)
	t.mask = uint32(slots - 1)
}

// fnv1a is the 64-bit FNV-1a hash of s.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Intern returns the ID for s, assigning the next dense ID on first sight.
// Interning the same string twice returns the same ID. The empty string is
// internable like any other (it receives a real ID; callers that want to
// treat "" as absent should check before calling).
func (t *Table) Intern(s string) ID {
	t.mu.Lock()
	id := t.internLocked(s)
	t.mu.Unlock()
	return id
}

func (t *Table) internLocked(s string) ID {
	if t.idx == nil {
		t.init(initialSlots)
	}
	h := fnv1a(s)
	slot := uint32(h) & t.mask
	for {
		id := t.idx[slot]
		if id == 0 {
			break // empty: not present
		}
		if t.strs[id-1] == s {
			return id
		}
		slot = (slot + 1) & t.mask
	}
	t.strs = append(t.strs, s)
	id := ID(len(t.strs))
	t.idx[slot] = id
	if len(t.strs)*maxLoadDen > len(t.idx)*maxLoadNum {
		t.growLocked()
	}
	return id
}

func (t *Table) growLocked() {
	old := t.idx
	t.init(len(old) * 2)
	for _, id := range old {
		if id == 0 {
			continue
		}
		h := fnv1a(t.strs[id-1])
		slot := uint32(h) & t.mask
		for t.idx[slot] != 0 {
			slot = (slot + 1) & t.mask
		}
		t.idx[slot] = id
	}
}

// Lookup returns the ID previously assigned to s, or (None, false) if s has
// never been interned.
func (t *Table) Lookup(s string) (ID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.idx == nil {
		return None, false
	}
	h := fnv1a(s)
	slot := uint32(h) & t.mask
	for {
		id := t.idx[slot]
		if id == 0 {
			return None, false
		}
		if t.strs[id-1] == s {
			return id, true
		}
		slot = (slot + 1) & t.mask
	}
}

// Resolve returns the string for id. Resolving None or an out-of-range ID
// returns "".
func (t *Table) Resolve(id ID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == 0 || int(id) > len(t.strs) {
		return ""
	}
	return t.strs[id-1]
}

// Len reports how many distinct strings have been interned.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.strs)
}

// Export returns the interned strings in ID order: index i holds the string
// for ID i+1. The returned slice is an independent copy, so it can be
// serialized (checkpoint snapshots, federation state transfer) while the
// table keeps interning. Import on a fresh table reproduces the exact same
// ID assignment.
func (t *Table) Export() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.strs))
	copy(out, t.strs)
	return out
}

// Import replaces the table's contents with strs in ID order: strs[i] is
// assigned ID i+1, exactly reversing Export. Existing contents are
// discarded (IDs assigned before Import are invalidated). Duplicate strings
// would make the ID assignment ambiguous, so Import rejects them — Export
// never produces duplicates, catching corrupted or hand-built state early.
func (t *Table) Import(strs []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resetLocked()
	for i, s := range strs {
		if id := t.internLocked(s); int(id) != i+1 {
			t.resetLocked()
			return fmt.Errorf("symtab: import index %d: %q already interned as ID %d", i, s, id)
		}
	}
	return nil
}

// Reset empties the table for reuse, retaining allocated capacity. IDs
// assigned before Reset are invalidated.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resetLocked()
}

func (t *Table) resetLocked() {
	t.strs = t.strs[:0]
	if t.idx == nil {
		t.init(initialSlots)
		return
	}
	for i := range t.idx {
		t.idx[i] = 0
	}
}

// tablePool recycles Tables across trials so steady-state allocations do not
// grow with trial count.
var tablePool = sync.Pool{New: func() any { return New() }}

// Get returns a reset Table from the package pool.
func Get() *Table {
	t := tablePool.Get().(*Table)
	// Tables are reset on Release, but reset defensively in case a caller
	// released a dirty table via a future code path.
	if len(t.strs) != 0 {
		t.Reset()
	}
	return t
}

// Release resets t and returns it to the package pool. Release is
// idempotent in the sense that releasing an already-reset table is safe, but
// callers must not use t after Release (another trial may own it).
func (t *Table) Release() {
	t.Reset()
	tablePool.Put(t)
}
