package symtab

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestInternBasics(t *testing.T) {
	tab := New()
	a := tab.Intern("alpha.com")
	b := tab.Intern("beta.com")
	if a != 1 || b != 2 {
		t.Fatalf("expected dense IDs 1,2, got %d,%d", a, b)
	}
	if got := tab.Intern("alpha.com"); got != a {
		t.Fatalf("re-intern changed ID: %d != %d", got, a)
	}
	if got := tab.Resolve(a); got != "alpha.com" {
		t.Fatalf("Resolve(%d) = %q", a, got)
	}
	if got := tab.Resolve(None); got != "" {
		t.Fatalf("Resolve(None) = %q, want empty", got)
	}
	if got := tab.Resolve(99); got != "" {
		t.Fatalf("Resolve(out-of-range) = %q, want empty", got)
	}
	if id, ok := tab.Lookup("beta.com"); !ok || id != b {
		t.Fatalf("Lookup(beta.com) = %d,%v", id, ok)
	}
	if id, ok := tab.Lookup("gamma.com"); ok || id != None {
		t.Fatalf("Lookup(miss) = %d,%v, want None,false", id, ok)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestInternEmptyString(t *testing.T) {
	tab := New()
	id := tab.Intern("")
	if id == None {
		t.Fatal("empty string must receive a real ID, got None")
	}
	if got := tab.Intern(""); got != id {
		t.Fatalf("re-intern of empty string: %d != %d", got, id)
	}
	if got := tab.Resolve(id); got != "" {
		t.Fatalf("Resolve(empty id) = %q", got)
	}
}

// TestInternProperty is the satellite property test: intern→resolve
// round-trips, and IDs are dense and stable under interleaved interning of
// new and already-seen strings.
func TestInternProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	tab := New()
	want := make(map[string]ID)
	var order []string // order[i] interned with ID i+1

	for step := 0; step < 20000; step++ {
		var s string
		if len(order) > 0 && rng.Intn(3) == 0 {
			// Re-intern an already-seen string (interleaved).
			s = order[rng.Intn(len(order))]
		} else {
			s = fmt.Sprintf("d%06x.dga%d.com", rng.Intn(1<<20), rng.Intn(7))
		}
		id := tab.Intern(s)
		if prev, seen := want[s]; seen {
			if id != prev {
				t.Fatalf("step %d: ID for %q changed %d -> %d", step, s, prev, id)
			}
		} else {
			// Dense: a new string must get exactly len+1.
			if int(id) != len(order)+1 {
				t.Fatalf("step %d: new string got ID %d, want %d (dense)", step, id, len(order)+1)
			}
			want[s] = id
			order = append(order, s)
		}
	}
	if tab.Len() != len(order) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(order))
	}
	// Round-trip every assignment, in both directions.
	for i, s := range order {
		id := ID(i + 1)
		if got := tab.Resolve(id); got != s {
			t.Fatalf("Resolve(%d) = %q, want %q", id, got, s)
		}
		if got, ok := tab.Lookup(s); !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", s, got, ok, id)
		}
	}
}

func TestResetReuse(t *testing.T) {
	tab := New()
	for i := 0; i < 5000; i++ {
		tab.Intern(fmt.Sprintf("x%d.example", i))
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if id, ok := tab.Lookup("x0.example"); ok || id != None {
		t.Fatalf("Lookup after Reset = %d,%v", id, ok)
	}
	// IDs restart dense from 1.
	if id := tab.Intern("fresh.example"); id != 1 {
		t.Fatalf("first post-Reset ID = %d, want 1", id)
	}
}

func TestPoolRecycle(t *testing.T) {
	tab := Get()
	tab.Intern("a.example")
	tab.Intern("b.example")
	tab.Release()
	got := Get()
	if got.Len() != 0 {
		t.Fatalf("pooled table not reset: Len = %d", got.Len())
	}
	if id, ok := got.Lookup("a.example"); ok || id != None {
		t.Fatalf("stale entry survived recycle: %d,%v", id, ok)
	}
	got.Release()
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]ID, perWorker)
			for i := 0; i < perWorker; i++ {
				// Overlapping key space across workers: each string
				// interned by several goroutines must agree on its ID.
				out[i] = tab.Intern(fmt.Sprintf("shared%d.example", i))
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	for i := 0; i < perWorker; i++ {
		first := ids[0][i]
		for w := 1; w < workers; w++ {
			if ids[w][i] != first {
				t.Fatalf("worker %d disagrees on ID for shared%d: %d != %d", w, i, ids[w][i], first)
			}
		}
		if got := tab.Resolve(first); got != fmt.Sprintf("shared%d.example", i) {
			t.Fatalf("Resolve(%d) = %q", first, got)
		}
	}
	if tab.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", tab.Len(), perWorker)
	}
}

// FuzzIntern exercises duplicate, empty and non-canonical-case inputs: the
// table must treat byte-distinct strings as distinct, be idempotent for
// duplicates, and round-trip every assignment.
func FuzzIntern(f *testing.F) {
	f.Add("example.com", "EXAMPLE.com", "example.com")
	f.Add("", "", "a")
	f.Add("x.y", "x.y.", "x..y")
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "b", "")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		tab := Get()
		defer tab.Release()
		in := []string{a, b, c, a, b, c}
		got := make([]ID, len(in))
		seen := make(map[string]ID)
		next := ID(1)
		for i, s := range in {
			got[i] = tab.Intern(s)
			if prev, ok := seen[s]; ok {
				if got[i] != prev {
					t.Fatalf("duplicate %q got different IDs: %d vs %d", s, got[i], prev)
				}
			} else {
				if got[i] != next {
					t.Fatalf("new string %q got ID %d, want dense %d", s, got[i], next)
				}
				seen[s] = got[i]
				next++
			}
		}
		for s, id := range seen {
			if r := tab.Resolve(id); r != s {
				t.Fatalf("Resolve(%d) = %q, want %q", id, r, s)
			}
			if l, ok := tab.Lookup(s); !ok || l != id {
				t.Fatalf("Lookup(%q) = %d,%v, want %d,true", s, l, ok, id)
			}
		}
		if tab.Len() != len(seen) {
			t.Fatalf("Len = %d, want %d", tab.Len(), len(seen))
		}
	})
}

func TestExportImportRoundTrip(t *testing.T) {
	tab := New()
	for i := 0; i < 100; i++ {
		tab.Intern(fmt.Sprintf("d%03d.example", i))
	}
	snap := tab.Export()
	if len(snap) != 100 {
		t.Fatalf("Export length = %d, want 100", len(snap))
	}
	// Export is a copy: interning more must not alias into the snapshot.
	tab.Intern("later.example")
	if len(snap) != 100 {
		t.Fatalf("Export aliased the live table")
	}

	restored := New()
	if err := restored.Import(snap); err != nil {
		t.Fatalf("Import: %v", err)
	}
	if restored.Len() != 100 {
		t.Fatalf("Len after Import = %d, want 100", restored.Len())
	}
	// Every string keeps its original dense ID, so interned references in
	// a restored checkpoint resolve to the same strings.
	for i, s := range snap {
		id, ok := restored.Lookup(s)
		if !ok || int(id) != i+1 {
			t.Fatalf("Lookup(%q) = %d,%v, want %d", s, id, ok, i+1)
		}
		if got := restored.Resolve(id); got != s {
			t.Fatalf("Resolve(%d) = %q, want %q", id, got, s)
		}
	}
	// Import replaces, not merges.
	if err := restored.Import([]string{"only.example"}); err != nil {
		t.Fatalf("re-Import: %v", err)
	}
	if restored.Len() != 1 {
		t.Fatalf("Len after re-Import = %d, want 1", restored.Len())
	}
	if _, ok := restored.Lookup("d000.example"); ok {
		t.Fatal("re-Import kept an entry from the previous snapshot")
	}
}

func TestImportRejectsDuplicates(t *testing.T) {
	tab := New()
	if err := tab.Import([]string{"a.example", "b.example", "a.example"}); err == nil {
		t.Fatal("Import accepted a duplicate entry")
	}
}

func TestImportEmpty(t *testing.T) {
	tab := New()
	tab.Intern("pre.example")
	if err := tab.Import(nil); err != nil {
		t.Fatalf("Import(nil): %v", err)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len after Import(nil) = %d, want 0", tab.Len())
	}
}
