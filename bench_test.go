// Benchmarks regenerating every table and figure of the paper's §V
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md §7. Each benchmark reports the artifact's headline accuracy
// metric via b.ReportMetric alongside the usual time/allocation figures, so
// `go test -bench=. -benchmem` doubles as a miniature reproduction run;
// cmd/benchgen regenerates the artifacts at full trial counts.
package botmeter_test

import (
	"fmt"
	"testing"

	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/experiments"
	"botmeter/internal/matcher"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// benchFig6Cfg keeps per-iteration cost benchmark-friendly while staying at
// the paper's pool scale. Workers: 0 resolves to GOMAXPROCS, so
// `go test -bench=Figure6a -cpu 1,4` measures sequential vs parallel trial
// execution (identical artifacts either way).
func benchFig6Cfg() experiments.Fig6Config {
	return experiments.Fig6Config{Trials: 2, Population: 64, Seed: 2016, Scale: 1, Workers: 0}
}

// reportMedianARE attaches the artifact's accuracy to the benchmark output.
func reportMedianARE(b *testing.B, pts []experiments.Fig6Point) {
	b.Helper()
	var medians []float64
	for _, p := range pts {
		medians = append(medians, p.ARE.P50)
	}
	b.ReportMetric(stats.Median(medians), "medianARE")
}

// BenchmarkTableI regenerates Table I (DGA parameter settings).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.RenderTableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure6a regenerates Figure 6(a): ARE vs bot population.
func BenchmarkFigure6a(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6a(benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMedianARE(b, pts)
}

// BenchmarkFigure6b regenerates Figure 6(b): ARE vs observation window.
func BenchmarkFigure6b(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6b(benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMedianARE(b, pts)
}

// BenchmarkFigure6c regenerates Figure 6(c): ARE vs negative-cache TTL.
func BenchmarkFigure6c(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6c(benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMedianARE(b, pts)
}

// BenchmarkFigure6d regenerates Figure 6(d): ARE vs activation dynamics σ.
func BenchmarkFigure6d(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6d(benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMedianARE(b, pts)
}

// BenchmarkFigure6e regenerates Figure 6(e): ARE vs D³ miss rate.
func BenchmarkFigure6e(b *testing.B) {
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6e(benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMedianARE(b, pts)
}

// BenchmarkFigure7 regenerates Figure 7: daily populations on the
// enterprise trace (reduced horizon for the benchmark loop).
func BenchmarkFigure7(b *testing.B) {
	var series []experiments.Fig7Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure7(experiments.Fig7Config{
			Days: 10, Seed: 2016, Scale: 1, BenignClients: 200, Workers: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	var errs []float64
	for _, s := range series {
		if s.Estimator == "MT" {
			continue // headline metric: the model-specific estimators
		}
		errs = append(errs, s.Errors()...)
	}
	b.ReportMetric(stats.Summarize(errs).Mean, "meanARE")
}

// BenchmarkTableII regenerates Table II from the Figure 7 series.
func BenchmarkTableII(b *testing.B) {
	series, err := experiments.Figure7(experiments.Fig7Config{
		Days: 10, Seed: 2016, Scale: 1, BenignClients: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []experiments.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableII(series)
	}
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	b.ReportMetric(rows[0].Summary.Mean, "row0meanARE")
}

// --- Ablation benches (DESIGN.md §7) ---

// arObservations simulates a newGoZ day and returns observations plus
// truth.
func arObservations(b *testing.B, seed uint64, n int) (trace.Observed, float64) {
	b.Helper()
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          dga.NewGoZ(),
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": n},
	}, net)
	if err != nil {
		b.Fatal(err)
	}
	res, err := runner.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		b.Fatal(err)
	}
	return net.Border.Observed(), float64(res.ActiveBots["local-00"][0])
}

// BenchmarkAblationBernoulliExactVsMC compares MB (Theorem 1) against the
// coverage-inversion alternative on identical observations.
func BenchmarkAblationBernoulliExactVsMC(b *testing.B) {
	obs, truth := arObservations(b, 4242, 64)
	cfg := estimators.Config{Spec: dga.NewGoZ(), Seed: 4242}
	for _, est := range []estimators.Estimator{estimators.NewBernoulli(), estimators.NewCoverage()} {
		b.Run(est.Name(), func(b *testing.B) {
			var got float64
			for i := 0; i < b.N; i++ {
				var err error
				got, err = est.EstimateEpoch(obs, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.ARE(got, truth), "ARE")
		})
	}
}

// BenchmarkAblationTTLPartition quantifies the effect of MB's per-TTL
// evaluation: without it the full-epoch circle saturates and the estimate
// collapses (see bernoulli.go).
func BenchmarkAblationTTLPartition(b *testing.B) {
	obs, truth := arObservations(b, 777, 128)
	cfg := estimators.Config{Spec: dga.NewGoZ(), Seed: 777}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"partitioned", false}, {"whole-epoch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			mb := estimators.NewBernoulli()
			mb.DisableTTLPartition = mode.disable
			var got float64
			for i := 0; i < b.N; i++ {
				var err error
				got, err = mb.EstimateEpoch(obs, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.ARE(got, truth), "ARE")
		})
	}
}

// BenchmarkAblationGranularity shows MT's collapse when vantage timestamps
// are coarser than the query interval — the bridge between Figure 6 (100 ms
// stamps) and Table II (1 s stamps).
func BenchmarkAblationGranularity(b *testing.B) {
	obs, truth := arObservations(b, 999, 64)
	for _, g := range []sim.Time{100 * sim.Millisecond, sim.Second, 10 * sim.Second} {
		b.Run(fmt.Sprintf("granularity-%v", g.Duration()), func(b *testing.B) {
			cfg := estimators.Config{Spec: dga.NewGoZ(), Seed: 999, Granularity: g}
			coarse := obs.Truncate(g)
			mt := estimators.NewTiming()
			var got float64
			for i := 0; i < b.N; i++ {
				var err error
				got, err = mt.EstimateEpoch(coarse, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.ARE(got, truth), "ARE")
		})
	}
}

// BenchmarkAblationMatcher compares exact-set and Bloom matching at
// Conficker pool scale (50K domains/day).
func BenchmarkAblationMatcher(b *testing.B) {
	pool := dga.ConfickerC().Pool.PoolFor(1, 0)
	probe := make([]string, 0, 1000)
	probe = append(probe, pool.Domains[:500]...)
	for i := 0; i < 500; i++ {
		probe = append(probe, fmt.Sprintf("benign-%04d.example.com", i))
	}
	set := matcher.NewSet("conficker", pool.Domains)
	bloom, err := matcher.NewBloom("conficker", pool.Domains, pool.Size(), 0.001)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []matcher.Matcher{set, bloom} {
		name := "set"
		if m == matcher.Matcher(bloom) {
			name = "bloom"
		}
		b.Run(name, func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, d := range probe {
					if m.Match(d) {
						hits++
					}
				}
			}
			_ = hits
		})
	}
}

// BenchmarkSetMatchID measures the ID kernel's bitset matcher on the same
// Conficker-scale workload as BenchmarkAblationMatcher (500 in-pool + 500
// benign probes): compare `set` there (string hashing per probe) against the
// two-compare-plus-bit-test ID path here.
func BenchmarkSetMatchID(b *testing.B) {
	tab := symtab.Get()
	defer tab.Release()
	pool := dga.ConfickerC().Pool.PoolFor(1, 0)
	pool.Intern(tab)
	probe := make([]symtab.ID, 0, 1000)
	probe = append(probe, pool.IDs[:500]...)
	for i := 0; i < 500; i++ {
		probe = append(probe, tab.Intern(fmt.Sprintf("benign-%04d.example.com", i)))
	}
	m := matcher.NewIDMatcher("conficker", pool.IDs)
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, id := range probe {
			if m.MatchID(id) {
				hits++
			}
		}
	}
	_ = hits
}

// BenchmarkAblationPoissonClustering compares MP against the naive visible-
// cluster count it corrects (Equation 1's caching correction).
func BenchmarkAblationPoissonClustering(b *testing.B) {
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          dga.Murofet(),
		Seed:          1212,
		BotsPerServer: map[string]int{"local-00": 64},
	}, net)
	if err != nil {
		b.Fatal(err)
	}
	res, err := runner.Run(sim.Window{Start: 0, End: sim.Day})
	if err != nil {
		b.Fatal(err)
	}
	truth := float64(res.ActiveBots["local-00"][0])
	obs := net.Border.Observed()
	cfg := estimators.Config{Spec: dga.Murofet(), Seed: 1212}
	for _, est := range []estimators.Estimator{estimators.NewPoisson(), estimators.NewNaive()} {
		b.Run(est.Name(), func(b *testing.B) {
			var got float64
			for i := 0; i < b.N; i++ {
				var err error
				got, err = est.EstimateEpoch(obs, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.ARE(got, truth), "ARE")
		})
	}
}
