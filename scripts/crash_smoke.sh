#!/usr/bin/env bash
# Crash-recovery smoke for the live pipeline (DESIGN.md §15): run a real
# vantage point with live estimation and checkpointing, drive real DGA
# traffic at it with dgasim, kill -9 it mid-flight, restart it, and assert
# that the recovered /landscape is exactly what a batch botmeter run
# computes over the durable observed dataset. Then verify a clean shutdown
# writes a final checkpoint generation.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
VPID=""
cleanup() {
  [ -n "$VPID" ] && kill -9 "$VPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$ROOT"

DNS_ADDR=127.0.0.1:15390
OBS_ADDR=127.0.0.1:15391
FAMILY=newgoz
SEED=7

mkdir -p "$BIN"
go build -o "$BIN" ./cmd/vantage ./cmd/dgasim ./cmd/botmeter

start_vantage() {
  "$BIN/vantage" \
    -listen "$DNS_ADDR" \
    -observed "$WORK/observed.jsonl" \
    -flush-interval 100ms -flush-every 16 \
    -live-estimate "$FAMILY" -live-seed "$SEED" \
    -checkpoint-dir "$WORK/ckpt" -checkpoint-every 500 -checkpoint-interval 5s \
    -obs-addr "$OBS_ADDR" \
    >>"$WORK/vantage.log" 2>&1 &
  VPID=$!
}

wait_healthz() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$OBS_ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "vantage never became healthy" >&2
  cat "$WORK/vantage.log" >&2
  return 1
}

ckpt_gens() { ls "$WORK/ckpt"/checkpoint-*.ckpt 2>/dev/null | sort | tail -1; }

start_vantage
wait_healthz

# Round 1: real DGA traffic (UDP DNS queries drawing today's barrels).
"$BIN/dgasim" -family "$FAMILY" -seed "$SEED" -bots 6 -live "$DNS_ADDR"
sleep 1 # let the writer flush and the record-count checkpoint land

gen_before_kill="$(ckpt_gens)"
if [ -z "$gen_before_kill" ]; then
  echo "no checkpoint generation written before the crash" >&2
  cat "$WORK/vantage.log" >&2
  exit 1
fi

# Crash: SIGKILL. No flush, no final checkpoint — everything after the
# last flush/checkpoint must be recovered from disk state alone.
kill -9 "$VPID"
wait "$VPID" 2>/dev/null || true

# Restart: recovery restores the newest good checkpoint, replays the tail
# of the observed dataset exactly-once, and quiesces the reorder buffers so
# /landscape immediately equals the batch answer.
start_vantage
wait_healthz

curl -fsS "http://$OBS_ADDR/healthz" >"$WORK/healthz.txt"
if ! grep -q "recovered from checkpoint generation" "$WORK/healthz.txt"; then
  echo "recovery status missing from /healthz:" >&2
  cat "$WORK/healthz.txt" >&2
  cat "$WORK/vantage.log" >&2
  exit 1
fi

curl -fsS "http://$OBS_ADDR/landscape" >"$WORK/live.json"
"$BIN/botmeter" -family "$FAMILY" -seed "$SEED" \
  -in "$WORK/observed.jsonl" -format jsonl -lenient -json >"$WORK/batch.json"

python3 - "$WORK/live.json" "$WORK/batch.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    live = json.load(f)
with open(sys.argv[2]) as f:
    batch = json.load(f)
live.pop("ingest", None)  # stream-only ingest counters; batch has none
if live != batch:
    print("live /landscape diverged from the batch analysis", file=sys.stderr)
    print("live:  " + json.dumps(live, sort_keys=True)[:2000], file=sys.stderr)
    print("batch: " + json.dumps(batch, sort_keys=True)[:2000], file=sys.stderr)
    sys.exit(1)
print("OK: /landscape after kill -9 + recovery == batch landscape")
PY

# Round 2: more traffic after recovery, then a clean shutdown. The final
# checkpoint must advance the generation so the next start restores
# instead of replaying the whole dataset.
"$BIN/dgasim" -family "$FAMILY" -seed "$SEED" -bots 3 -live "$DNS_ADDR"
sleep 1
kill "$VPID" # SIGTERM: clean shutdown path
wait "$VPID" 2>/dev/null || true
VPID=""

gen_after_shutdown="$(ckpt_gens)"
if [ -z "$gen_after_shutdown" ] || [ "$gen_after_shutdown" = "$gen_before_kill" ]; then
  echo "clean shutdown did not write a final checkpoint (before: ${gen_before_kill##*/}, after: ${gen_after_shutdown##*/})" >&2
  cat "$WORK/vantage.log" >&2
  exit 1
fi

echo "OK: crash-recovery smoke passed (final generation ${gen_after_shutdown##*/})"
