#!/usr/bin/env bash
# Wire fast-path smoke (DESIGN.md §19): stand up the production pipeline —
# vantage with live estimation behind resolver, both on their zero-copy
# SO_REUSEPORT serve loops — and drive it with cmd/loadgen at a modest
# fixed open-loop rate for 5 seconds. The run must finish with zero drops
# and zero decode errors, and both daemons' /healthz must answer 200 the
# whole time (polled concurrently with the load).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
VPID=""
RPID=""
WATCH=""
cleanup() {
  [ -n "$WATCH" ] && kill "$WATCH" 2>/dev/null || true
  [ -n "$RPID" ] && kill -9 "$RPID" 2>/dev/null || true
  [ -n "$VPID" ] && kill -9 "$VPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$ROOT"

VANTAGE_DNS=127.0.0.1:15490
VANTAGE_OBS=127.0.0.1:15491
RESOLVER_DNS=127.0.0.1:15492
RESOLVER_OBS=127.0.0.1:15493
RATE=1000
DURATION=5s

mkdir -p "$BIN"
go build -o "$BIN" ./cmd/vantage ./cmd/resolver ./cmd/loadgen

"$BIN/vantage" \
  -listen "$VANTAGE_DNS" \
  -observed "$WORK/observed.jsonl" \
  -flush-interval 200ms -flush-every 64 \
  -live-estimate newgoz -live-seed 7 \
  -obs-addr "$VANTAGE_OBS" \
  >>"$WORK/vantage.log" 2>&1 &
VPID=$!
disown

"$BIN/resolver" \
  -listen "$RESOLVER_DNS" \
  -upstream "$VANTAGE_DNS" \
  -obs-addr "$RESOLVER_OBS" \
  >>"$WORK/resolver.log" 2>&1 &
RPID=$!
disown

wait_healthz() {
  local addr="$1" name="$2"
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "$name never became healthy" >&2
  cat "$WORK/$name.log" >&2
  return 1
}
wait_healthz "$VANTAGE_OBS" vantage
wait_healthz "$RESOLVER_OBS" resolver

# Health watcher: any non-200 during the load is a failure. It polls both
# daemons every 200ms and records misses; the main flow asserts the file
# stays empty.
(
  while :; do
    for pair in "vantage=$VANTAGE_OBS" "resolver=$RESOLVER_OBS"; do
      name="${pair%%=*}"
      addr="${pair#*=}"
      if ! curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
        echo "$(date -u +%T) $name /healthz not 200" >>"$WORK/health_failures"
      fi
    done
    sleep 0.2
  done
) &
WATCH=$!

"$BIN/loadgen" \
  -target "$RESOLVER_DNS" \
  -rate "$RATE" -duration "$DURATION" -drain 2s \
  -sockets 2 -domains 256 \
  -json "$WORK/summary.json" \
  -pipeline-pids "$RPID,$VPID" \
  | tee "$WORK/loadgen.out"

kill "$WATCH" 2>/dev/null || true
WATCH=""

if [ -s "$WORK/health_failures" ]; then
  echo "healthz degraded during the load:" >&2
  cat "$WORK/health_failures" >&2
  cat "$WORK/vantage.log" "$WORK/resolver.log" >&2
  exit 1
fi

python3 - "$WORK/summary.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    s = json.load(f)
problems = []
if s["sent"] == 0:
    problems.append("no queries sent")
if s["drops"] != 0:
    problems.append(f"drops={s['drops']} (sent={s['sent']} received={s['received']})")
if s["decode_errors"] != 0:
    problems.append(f"decode_errors={s['decode_errors']}")
if problems:
    print("loadgen smoke failed: " + "; ".join(problems), file=sys.stderr)
    print(json.dumps(s, indent=2), file=sys.stderr)
    sys.exit(1)
print(f"OK: {s['sent']} queries, 0 drops, 0 decode errors, "
      f"p99={s['p99_sec']*1e6:.0f}us, qps/core={s.get('qps_per_core', 0):.0f}")
PY

# Final explicit 200s after the load has drained.
curl -fsS "http://$VANTAGE_OBS/healthz" >/dev/null
curl -fsS "http://$RESOLVER_OBS/healthz" >/dev/null
echo "OK: loadgen smoke passed (pipeline healthy throughout)"
