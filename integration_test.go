// Integration tests exercising the public facade end-to-end: multiple DGA
// families coexisting in one network, estimation through the root-package
// API, and the taxonomy cells outside the paper's evaluated grid.
package botmeter_test

import (
	"testing"

	"botmeter"
	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
)

// TestTwoFamiliesOneNetwork runs newGoZ and Murofet simultaneously behind
// the same local server; each BotMeter instance must isolate its own
// family's traffic and recover its own population.
func TestTwoFamiliesOneNetwork(t *testing.T) {
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})
	day := sim.Window{Start: 0, End: sim.Day}

	type deployment struct {
		spec  dga.Spec
		seed  uint64
		bots  int
		truth float64
	}
	deployments := []*deployment{
		{spec: dga.NewGoZ(), seed: 101, bots: 40},
		{spec: dga.Murofet(), seed: 202, bots: 24},
	}
	for _, d := range deployments {
		runner, err := botnet.NewRunner(botnet.Config{
			Spec:          d.spec,
			Seed:          d.seed,
			BotsPerServer: map[string]int{"local-00": d.bots},
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run(day)
		if err != nil {
			t.Fatal(err)
		}
		d.truth = float64(res.ActiveBots["local-00"][0])
	}

	obs := net.Border.Observed()
	for _, d := range deployments {
		bm, err := botmeter.New(botmeter.Config{Family: d.spec, Seed: d.seed})
		if err != nil {
			t.Fatal(err)
		}
		land, err := bm.Analyze(obs, day)
		if err != nil {
			t.Fatal(err)
		}
		got := land.Estimate("local-00")
		if are := stats.ARE(got, d.truth); are > 0.5 {
			t.Errorf("%s: estimate %v vs truth %v (ARE %.2f)", d.spec.Name, got, d.truth, are)
		}
		// Cross-contamination check: matched lookups must be a strict
		// subset of the total stream.
		if land.MatchedLookups == 0 || land.MatchedLookups >= len(obs) {
			t.Errorf("%s: matched %d of %d lookups — matcher not isolating",
				d.spec.Name, land.MatchedLookups, len(obs))
		}
	}
}

// TestFacadeEstimatorConstructors verifies the re-exported constructors
// select and name the estimators consistently.
func TestFacadeEstimatorConstructors(t *testing.T) {
	if botmeter.NewTiming().Name() != "MT" ||
		botmeter.NewPoisson().Name() != "MP" ||
		botmeter.NewBernoulli().Name() != "MB" ||
		botmeter.NewCoverage().Name() != "MB-C" {
		t.Error("estimator names drifted")
	}
	spec, err := botmeter.LookupFamily("murofet")
	if err != nil {
		t.Fatal(err)
	}
	if botmeter.ForModel(spec).Name() != "MP" {
		t.Error("ForModel(Murofet) should be MP")
	}
	if len(botmeter.FamilyNames()) < 10 {
		t.Error("family registry incomplete")
	}
}

// TestSlidingWindowFamilyEstimable covers a taxonomy cell outside the
// paper's evaluated grid: a sliding-window pool (PushDo) estimated with MT,
// exactly as the model-selection table prescribes.
func TestSlidingWindowFamilyEstimable(t *testing.T) {
	spec := dga.PushDo()
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          5,
		BotsPerServer: map[string]int{"local-00": 10},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	day := sim.Window{Start: 0, End: sim.Day}
	res, err := runner.Run(day)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := botmeter.New(botmeter.Config{Family: spec, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bm.EstimatorName() != "MP" {
		t.Fatalf("uniform-barrel sliding-window family selected %s, want MP", bm.EstimatorName())
	}
	land, err := bm.Analyze(net.Border.Observed(), day)
	if err != nil {
		t.Fatal(err)
	}
	got := land.Estimate("local-00")
	truth := float64(res.ActiveBots["local-00"][0])
	if got <= 0 {
		t.Errorf("no estimate for sliding-window family (truth %v)", truth)
	}
}

// TestMixturePoolFamilyEstimable covers the multiple-mixture cell (Pykspa):
// the matcher must absorb the 16K noisy domains without breaking MT.
func TestMixturePoolFamilyEstimable(t *testing.T) {
	spec := dga.Pykspa()
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          6,
		BotsPerServer: map[string]int{"local-00": 8},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	day := sim.Window{Start: 0, End: sim.Day}
	if _, err := runner.Run(day); err != nil {
		t.Fatal(err)
	}
	bm, err := botmeter.New(botmeter.Config{Family: spec, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	land, err := bm.Analyze(net.Border.Observed(), day)
	if err != nil {
		t.Fatal(err)
	}
	if land.Estimate("local-00") <= 0 {
		t.Error("mixture-pool family produced no estimate")
	}
}

// TestDetectionWindowFacade drives the D³ model through the facade type.
func TestDetectionWindowFacade(t *testing.T) {
	spec, err := botmeter.LookupFamily("newgoz")
	if err != nil {
		t.Fatal(err)
	}
	bm, err := botmeter.New(botmeter.Config{
		Family:    spec,
		Seed:      1,
		Detection: &botmeter.DetectionWindow{MissRate: 0.25, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := botmeter.Observed{
		{T: botmeter.Hour, Server: "local-00", Domain: "unmatched.example.com"},
	}
	land, err := bm.Analyze(obs, botmeter.Window{Start: 0, End: botmeter.Day})
	if err != nil {
		t.Fatal(err)
	}
	if land.MatchedLookups != 0 {
		t.Error("benign-only stream matched something")
	}
}
