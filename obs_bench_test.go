package botmeter_test

import (
	"fmt"
	"testing"
	"time"

	"botmeter/internal/dnssim"
	"botmeter/internal/experiments"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
)

// The BenchmarkObs* family bounds the observability layer's cost, in both
// states: enabled (atomic instruments on the dnssim query hot path) and
// disabled (nil registry — the default for every simulation run). CI runs
// them as a smoke test (`go test -bench=Obs -benchtime=100x`); compare
// BenchmarkObsQueryDisabled against BenchmarkObsQueryBaseline locally to
// verify the <5% disabled-overhead budget from DESIGN.md §11.

// benchHierarchy builds the standard benchmark hierarchy, optionally
// instrumented.
func benchHierarchy(reg *obs.Registry) *dnssim.Network {
	return dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 8,
		MidTierFanIn: 4,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Obs:          reg,
	})
}

func benchQueries(b *testing.B, n *dnssim.Network) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := fmt.Sprintf("10.0.0.%d", i%200)
		domain := fmt.Sprintf("q%05d.com", i%5000)
		if _, err := n.ClientQuery(sim.Time(i), client, domain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsQueryBaseline is the uninstrumented hot path (no Obs field at
// all would behave identically: a nil registry hands out nil instruments).
func BenchmarkObsQueryBaseline(b *testing.B) {
	benchQueries(b, benchHierarchy(nil))
}

// BenchmarkObsQueryDisabled is the instrument-wired hot path with a nil
// registry: every metric call is a single nil-check branch. This must stay
// within 5% of BenchmarkObsQueryBaseline.
func BenchmarkObsQueryDisabled(b *testing.B) {
	var reg *obs.Registry
	benchQueries(b, benchHierarchy(reg))
}

// BenchmarkObsQueryEnabled prices full metric collection on the same path.
func BenchmarkObsQueryEnabled(b *testing.B) {
	benchQueries(b, benchHierarchy(obs.NewRegistry()))
}

// BenchmarkParallelFig6a prices the parallel trial engine itself on a small
// Figure 6(a) configuration. The workers-1 sub-benchmark takes the engine's
// inline fast path (no goroutines, no channels) and must stay within noise
// of the pre-engine sequential loop; workers-gomaxprocs shows what the
// bounded pool buys on the current host (nothing on a single-core box —
// compare `-cpu 4`). The instrumented variant additionally wires a live
// registry to bound the per-trial metric overhead.
func BenchmarkParallelFig6a(b *testing.B) {
	base := experiments.Fig6Config{Trials: 2, Population: 24, Seed: 9, Scale: 0.08}
	run := func(b *testing.B, cfg experiments.Fig6Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Figure6a(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers-1", func(b *testing.B) {
		cfg := base
		cfg.Workers = 1
		run(b, cfg)
	})
	b.Run("workers-gomaxprocs", func(b *testing.B) {
		cfg := base
		cfg.Workers = 0
		run(b, cfg)
	})
	b.Run("workers-1-instrumented", func(b *testing.B) {
		cfg := base
		cfg.Workers = 1
		cfg.Obs = obs.NewRegistry()
		run(b, cfg)
	})
}

func BenchmarkObsCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterNil(b *testing.B) {
	var c *obs.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkObsSpanUnsampled(b *testing.B) {
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: 1 << 30, Capacity: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("q")
		sp.Event("step")
		sp.End()
	}
}

func BenchmarkObsSpanSampled(b *testing.B) {
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: 1, Capacity: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("q")
		sp.Event("step")
		sp.End()
	}
}
