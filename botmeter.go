// Package botmeter reproduces "BotMeter: Charting DGA-Botnet Landscapes in
// Large Networks" (ICDCS 2016): a tool that estimates the population of
// DGA-embedded bots behind each local DNS server of a large network, using
// only the cache-filtered DNS lookups observable at an upper-level (border)
// vantage point.
//
// This root package is the stable public facade over the implementation
// packages:
//
//   - the DGA taxonomy and family presets (pool models × barrel models),
//   - the hierarchical caching/forwarding DNS simulator,
//   - the analytical model library: the Timing estimator MT (Algorithm 1),
//     the Poisson estimator MP (Equation 1) and the Bernoulli estimator MB
//     (Theorem 1), plus a coverage-inversion estimator and a naive baseline,
//   - the end-to-end pipeline that matches traffic, groups it by forwarding
//     server and charts the remediation-priority landscape.
//
// Quickstart:
//
//	family, _ := botmeter.LookupFamily("newgoz")
//	bm, _ := botmeter.New(botmeter.Config{Family: family, Seed: seed})
//	landscape, _ := bm.Analyze(observed, botmeter.Window{End: botmeter.Day})
//	fmt.Print(landscape)
//
// See examples/ for runnable scenarios and cmd/ for the CLI tools.
package botmeter

import (
	"botmeter/internal/core"
	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// Config configures a BotMeter deployment for one target DGA family.
type Config = core.Config

// BotMeter is the analysis pipeline (paper Figure 2).
type BotMeter = core.BotMeter

// Landscape is the charted result: per-server population estimates in
// remediation-priority order.
type Landscape = core.Landscape

// ServerEstimate is one local DNS server's assessment.
type ServerEstimate = core.ServerEstimate

// Trend tracks per-server estimates across consecutive analysis windows.
type Trend = core.Trend

// NewTrend starts an empty longitudinal trend for a family.
func NewTrend(family string) *Trend { return core.NewTrend(family) }

// New builds a BotMeter instance.
func New(cfg Config) (*BotMeter, error) { return core.New(cfg) }

// Spec describes a DGA family (pool model, barrel model, θ parameters).
type Spec = dga.Spec

// LookupFamily finds a family preset by case-insensitive name (e.g.
// "newgoz", "conficker.c", "murofet").
func LookupFamily(name string) (Spec, error) { return dga.Lookup(name) }

// FamilyNames lists the available presets.
func FamilyNames() []string { return dga.FamilyNames() }

// Estimator is one analytical population model.
type Estimator = estimators.Estimator

// EstimatorConfig parameterises direct estimator use (most callers go
// through BotMeter instead).
type EstimatorConfig = estimators.Config

// NewTiming returns MT, the paper's Algorithm 1.
func NewTiming() Estimator { return estimators.NewTiming() }

// NewPoisson returns MP, the paper's Equation 1 estimator for
// uniform-barrel DGAs.
func NewPoisson() Estimator { return estimators.NewPoisson() }

// NewBernoulli returns MB, the paper's Theorem 1 estimator for
// randomcut-barrel DGAs.
func NewBernoulli() Estimator { return estimators.NewBernoulli() }

// NewCoverage returns the coverage-inversion estimator (MB's engineering
// fallback, exposed for ablation).
func NewCoverage() Estimator { return estimators.NewCoverage() }

// ForModel returns the estimator the paper pairs with a DGA's taxonomy
// cell.
func ForModel(spec Spec) Estimator { return estimators.ForModel(spec) }

// DetectionWindow models an imperfect D³ (DGA-domain detection) front end.
type DetectionWindow = d3.Window

// Observed is the vantage-point dataset: ⟨timestamp, forwarding server,
// domain⟩ records.
type Observed = trace.Observed

// ObservedRecord is one forwarded lookup.
type ObservedRecord = trace.ObservedRecord

// Raw is the client-level dataset (ground truth inside the network).
type Raw = trace.Raw

// RawRecord is one client-level lookup.
type RawRecord = trace.RawRecord

// Time is a virtual timestamp in milliseconds.
type Time = sim.Time

// Window is a half-open analysis interval.
type Window = sim.Window

// Common durations in virtual-clock units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)
