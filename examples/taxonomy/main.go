// Taxonomy: exercise every DGA family preset in the library — one
// simulated epoch each — and print the DNS dynamics that the paper's
// taxonomy (Figure 3) is built on: pool model, barrel model, pool size,
// lookups issued vs visible at the vantage point, and C2 contact rate.
//
//	go run ./examples/taxonomy
package main

import (
	"fmt"
	"log"

	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
)

func main() {
	const (
		seed = 5
		bots = 24
	)
	day := sim.Window{Start: 0, End: sim.Day}

	fmt.Printf("%-12s %-18s %-12s %8s %9s %9s %7s\n",
		"family", "pool model", "barrel", "pool", "issued", "visible", "C2 hits")
	for _, name := range dga.FamilyNames() {
		spec, err := dga.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		net := dnssim.NewNetwork(dnssim.NetworkConfig{
			LocalServers: 1,
			PositiveTTL:  sim.Day,
			NegativeTTL:  2 * sim.Hour,
		})
		runner, err := botnet.NewRunner(botnet.Config{
			Spec:          spec,
			Seed:          seed,
			BotsPerServer: map[string]int{"local-00": bots},
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(day)
		if err != nil {
			log.Fatal(err)
		}
		pc, bc := spec.Classify()
		fmt.Printf("%-12s %-18s %-12s %8d %9d %9d %7d\n",
			spec.Name, pc, bc,
			spec.Pool.NXDomains()+spec.Pool.C2Domains(),
			res.QueriesIssued, len(net.Border.Observed()), res.C2Contacts)
	}

	fmt.Println("\nReading the table: uniform barrels (Murofet, PushDo, Srizbi…) show")
	fmt.Println("the strongest cache filtering — identical query sequences collapse")
	fmt.Println("into one visible activation per TTL window. Sampling and randomcut")
	fmt.Println("barrels leak far more distinct NXDs, which is exactly the signal")
	fmt.Println("the Bernoulli estimator consumes.")
}
