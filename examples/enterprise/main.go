// Enterprise: chart a Conficker-style outbreak across a large network with
// eight local DNS servers behind two mid-tier servers, mixed with benign
// traffic — the deployment scenario of the paper's introduction. BotMeter
// ranks the sub-networks so a response team knows where to go first.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
)

func main() {
	const seed = 7

	// Three-level hierarchy: 8 local servers, 2 mid-tiers, 1 border.
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 8,
		MidTierFanIn: 4,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  sim.Second,
	})

	// Benign background: the registry resolves a popular zone, and office
	// clients query it all day (cache-absorbed almost entirely).
	for i := 0; i < 500; i++ {
		net.Registry.Register(fmt.Sprintf("corp-app-%03d.example.com", i))
	}
	rng := sim.NewRNG(99)
	for c := 0; c < 400; c++ {
		client := fmt.Sprintf("10.1.%d.%d", c/200, c%200)
		for q := 0; q < 10; q++ {
			at := sim.Time(rng.Int64N(int64(sim.Day)))
			domain := fmt.Sprintf("corp-app-%03d.example.com", rng.IntN(500))
			if _, err := net.ClientQuery(at, client, domain); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Uneven Conficker.C infection: some sites are hotspots.
	family := dga.ConfickerC()
	infection := map[string]int{
		"local-00": 4, "local-01": 48, "local-02": 12, "local-03": 2,
		"local-04": 0, "local-05": 25, "local-06": 7, "local-07": 90,
	}
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          family,
		Seed:          seed,
		BotsPerServer: infection,
	}, net)
	if err != nil {
		log.Fatal(err)
	}
	day := sim.Window{Start: 0, End: sim.Day}
	truth, err := runner.Run(day)
	if err != nil {
		log.Fatal(err)
	}

	// Conficker.C samples its barrel (AS): the paper pairs it with the
	// Timing estimator.
	bm, err := core.New(core.Config{
		Family:      family,
		Seed:        seed,
		Granularity: sim.Second,
		Estimator:   estimators.NewTiming(),
	})
	if err != nil {
		log.Fatal(err)
	}
	landscape, err := bm.Analyze(net.Border.Observed(), day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(landscape)
	fmt.Println("\nNOTE: mid-tier servers aggregate their children, so the vantage")
	fmt.Println("point attributes lookups to mid-00/mid-01; per-site estimates need")
	fmt.Println("taps below the mid-tier — exactly the paper's visibility trade-off.")

	fmt.Println("\nground truth (activated bots per local server):")
	for _, id := range net.LocalIDs() {
		fmt.Printf("  %-10s %3d\n", id, truth.ActiveBots[id][0])
	}

	// Re-run with the vantage point directly above the local servers.
	fmt.Println("\n--- with the vantage point directly above local servers ---")
	flat := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 8,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  sim.Second,
	})
	runner2, err := botnet.NewRunner(botnet.Config{
		Spec:          family,
		Seed:          seed,
		BotsPerServer: infection,
	}, flat)
	if err != nil {
		log.Fatal(err)
	}
	truth2, err := runner2.Run(day)
	if err != nil {
		log.Fatal(err)
	}
	bm2, err := core.New(core.Config{
		Family:      family,
		Seed:        seed,
		Granularity: sim.Second,
		Estimator:   estimators.NewTiming(),
	})
	if err != nil {
		log.Fatal(err)
	}
	landscape2, err := bm2.Analyze(flat.Border.Observed(), day)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(landscape2)
	fmt.Println("\nremediation order vs ground truth:")
	for i, s := range landscape2.Servers {
		fmt.Printf("  #%d %-10s est %6.1f actual %3d\n",
			i+1, s.Server, s.Population, truth2.ActiveBots[s.Server][0])
	}
}
