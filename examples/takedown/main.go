// Takedown: quantify how estimator choice changes what a response team
// believes, across three threat models — a cooperative uniform-barrel DGA
// (Murofet), a randomcut DGA (newGoZ), and the paper's §VII "future work"
// adversary: a DGA designed to evade population estimation by randomising
// its query pacing and sampling its barrel.
//
//	go run ./examples/takedown
package main

import (
	"fmt"
	"log"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
)

func main() {
	const (
		seed = 31
		bots = 48
	)
	day := sim.Window{Start: 0, End: sim.Day}

	scenarios := []struct {
		title string
		spec  dga.Spec
		ests  []estimators.Estimator
	}{
		{
			title: "Murofet (AU — identical barrels, cache hides most bots)",
			spec:  dga.Murofet(),
			ests: []estimators.Estimator{
				estimators.NewNaive(),   // visible activations only
				estimators.NewTiming(),  // Algorithm 1
				estimators.NewPoisson(), // Equation 1, corrects for caching
			},
		},
		{
			title: "newGoZ (AR — random cuts, segment structure is informative)",
			spec:  dga.NewGoZ(),
			ests: []estimators.Estimator{
				estimators.NewTiming(),
				estimators.NewBernoulli(), // Theorem 1
				estimators.NewCoverage(),  // coverage-inversion alternative
			},
		},
		{
			title: "Adaptive (§VII adversary — jittered pacing, sampled barrel)",
			spec:  dga.Adaptive(),
			ests: []estimators.Estimator{
				estimators.NewTiming(),
				estimators.NewPoisson(),
				estimators.NewCoverage(),
			},
		},
	}

	for _, sc := range scenarios {
		fmt.Printf("=== %s ===\n", sc.title)
		net := dnssim.NewNetwork(dnssim.NetworkConfig{
			LocalServers: 1,
			PositiveTTL:  sim.Day,
			NegativeTTL:  2 * sim.Hour,
			Granularity:  sim.Second, // realistic coarse vantage logs
		})
		runner, err := botnet.NewRunner(botnet.Config{
			Spec:          sc.spec,
			Seed:          seed,
			BotsPerServer: map[string]int{"local-00": bots},
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := runner.Run(day)
		if err != nil {
			log.Fatal(err)
		}
		actual := truth.ActiveBots["local-00"][0]
		obs := net.Border.Observed()
		fmt.Printf("ground truth: %d active bots; %d lookups issued, %d visible\n",
			actual, truth.QueriesIssued, len(obs))
		for _, est := range sc.ests {
			bm, err := core.New(core.Config{
				Family:      sc.spec,
				Seed:        seed,
				Granularity: sim.Second,
				Estimator:   est,
			})
			if err != nil {
				log.Fatal(err)
			}
			land, err := bm.Analyze(obs, day)
			if err != nil {
				log.Fatal(err)
			}
			got := land.Estimate("local-00")
			fmt.Printf("  %-5s estimates %6.1f bots  (error %+5.0f%%)\n",
				est.Name(), got, 100*(got-float64(actual))/float64(actual))
		}
		fmt.Println()
	}
	fmt.Println("Reading the adversary's numbers: randomised pacing breaks MT's")
	fmt.Println("phase heuristic and sampling breaks MP's identical-barrel premise;")
	fmt.Println("set-based estimators (MB-C here) survive because the adversary")
	fmt.Println("cannot hide WHICH domains were queried — only when. That asymmetry")
	fmt.Println("is the paper's closing argument for semantic+temporal hybrids.")
}
