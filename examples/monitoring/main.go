// Monitoring: run BotMeter daily over a two-week enterprise trace and keep
// a longitudinal trend per local server — growth triage, sparklines, CSV
// export — the operational loop the paper's introduction motivates
// ("quickly navigate the threat landscapes of their networks").
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"os"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/enterprise"
	"botmeter/internal/sim"
)

func main() {
	const days = 14

	// A newGoZ infection that grows through the window (volatile walk
	// around a rising mean is approximated by high volatility).
	infection := enterprise.Infection{
		Spec:       dga.NewGoZ(),
		Seed:       77,
		MeanActive: 24,
		Volatility: 0.6,
	}
	tr, err := enterprise.Generate(enterprise.Config{
		Days:          days,
		Seed:          77,
		BenignClients: 200,
		Granularity:   sim.Second,
		Infections:    []enterprise.Infection{infection},
	})
	if err != nil {
		log.Fatal(err)
	}

	bm, err := core.New(core.Config{
		Family:      infection.Spec,
		Seed:        infection.Seed,
		Granularity: sim.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	trend := core.NewTrend(infection.Spec.Name)
	var last *core.Landscape
	for day := 0; day < days; day++ {
		w := sim.Window{Start: sim.Time(day) * sim.Day, End: sim.Time(day+1) * sim.Day}
		land, err := bm.Analyze(tr.Observed.Window(w), w)
		if err != nil {
			log.Fatal(err)
		}
		trend.Add(land)
		last = land
	}

	fmt.Printf("=== %s monitored for %d days (estimator %s) ===\n",
		infection.Spec.Name, days, bm.EstimatorName())
	fmt.Printf("%-10s %-16s %8s %8s\n", "server", "trend", "latest", "growth")
	for server, series := range trend.Series {
		fmt.Printf("%-10s %-16s %8.1f %+7.0f%%\n",
			server, trend.Sparkline(server),
			series[len(series)-1], 100*trend.Growth(server))
	}

	fmt.Println("\nground truth (daily active bots):", tr.GroundTruth[infection.Spec.Name])

	fmt.Println("\nlatest landscape as CSV (for dashboards/ticketing):")
	if err := last.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
