// Quickstart: simulate a newGoZ-infected network behind one local DNS
// server, observe only the cache-filtered lookups at the border, and let
// BotMeter estimate how many bots are active.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"botmeter/internal/botnet"
	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
)

func main() {
	const seed = 42

	// 1. A hierarchical DNS infrastructure: one caching local server
	//    forwarding misses to a border server (the vantage point).
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
		Granularity:  100 * sim.Millisecond,
	})

	// 2. A newGoZ botnet (randomcut DGA: 500 consecutive domains from a
	//    random start in a 10K pool) of 64 bots behind that server.
	family := dga.NewGoZ()
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          family,
		Seed:          seed,
		BotsPerServer: map[string]int{"local-00": 64},
	}, net)
	if err != nil {
		log.Fatal(err)
	}
	day := sim.Window{Start: 0, End: sim.Day}
	truth, err := runner.Run(day)
	if err != nil {
		log.Fatal(err)
	}

	// 3. BotMeter taps the border server. It knows the DGA (and hence its
	//    domains) but sees neither clients nor cache-absorbed lookups.
	bm, err := core.New(core.Config{Family: family, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	landscape, err := bm.Analyze(net.Border.Observed(), day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(landscape)
	fmt.Printf("\nground truth: %d bots actually activated\n",
		truth.ActiveBots["local-00"][0])
	fmt.Printf("BotMeter saw %d forwarded lookups out of %d issued (%.0f%% cache-filtered)\n",
		landscape.MatchedLookups, truth.QueriesIssued,
		100*(1-float64(landscape.MatchedLookups)/float64(truth.QueriesIssued)))
}
