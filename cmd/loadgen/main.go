// Command loadgen is the wire fast path's proof harness (DESIGN.md §19): an
// open-loop loopback UDP DNS load generator that drives the
// resolver→vantage→stream-estimator pipeline at a fixed offered rate and
// reports what actually happened — achieved qps, per-query latency
// quantiles from an internal/obs histogram, loadgen-side allocations per
// query, and (when the daemons' pids are handed in) the pipeline's CPU cost
// per query expressed as qps per core.
//
// Open-loop means the send schedule never waits for responses: query i is
// due at start + i/rate whether or not query i−1 has been answered, so an
// overloaded target shows up as drops and latency inflation instead of a
// flattering self-throttled rate. Each sender socket owns its whole
// pipeline — pre-encoded query packets patched with a rotating ID, a
// 65536-slot send-timestamp table indexed by that ID, a dnswire.Arena for
// decoding responses — so the steady-state send/receive path performs no
// heap allocations and takes no locks beyond the shared histogram's
// atomics.
//
// The qps/core figure divides received responses by the CPU seconds the
// *pipeline* (resolver + vantage, via -pipeline-pids) burned while serving
// them. On a 1-core CI box wall-clock qps is bounded by everything sharing
// the core with the loadgen itself; CPU-normalised qps is the
// per-core-capacity claim the acceptance bar names.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// latencyBounds is a 1-2-5 ladder from 1µs to 5s (seconds, le-style upper
// bounds) — fine enough that p50/p99 interpolation is meaningful at both
// loopback (tens of µs) and congested (ms) operating points.
var latencyBounds = []float64{
	1e-6, 2e-6, 5e-6, 10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
	1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 100e-3, 200e-3, 500e-3,
	1, 2, 5,
}

// Summary is the machine-readable result of one run (-json).
type Summary struct {
	Target      string  `json:"target"`
	OfferedQPS  float64 `json:"offered_qps"`
	DurationSec float64 `json:"duration_sec"`
	Sockets     int     `json:"sockets"`
	Domains     int     `json:"domains"`

	Sent         uint64 `json:"sent"`
	Received     uint64 `json:"received"`
	Drops        uint64 `json:"drops"`
	Overruns     uint64 `json:"overruns"`
	Unmatched    uint64 `json:"unmatched"`
	DecodeErrors uint64 `json:"decode_errors"`

	AchievedQPS float64 `json:"achieved_qps"`
	P50Sec      float64 `json:"p50_sec"`
	P90Sec      float64 `json:"p90_sec"`
	P99Sec      float64 `json:"p99_sec"`
	MeanSec     float64 `json:"mean_sec"`

	AllocsPerQuery float64 `json:"loadgen_allocs_per_query"`
	LoadgenCPUSec  float64 `json:"loadgen_cpu_sec"`

	// Pipeline accounting, present only when -pipeline-pids was given and
	// /proc was readable.
	PipelineCPUSec  float64 `json:"pipeline_cpu_sec,omitempty"`
	QPSPerCore      float64 `json:"qps_per_core,omitempty"`
	PipelineRSSMB0  float64 `json:"pipeline_rss_mb_start,omitempty"`
	PipelineRSSMB1  float64 `json:"pipeline_rss_mb_end,omitempty"`
	PipelineRSSGrow float64 `json:"pipeline_rss_growth_mb,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	target := fs.String("target", "127.0.0.1:5301", "UDP DNS address to load (usually the resolver)")
	rate := fs.Float64("rate", 50000, "offered query rate in qps, open-loop across all sockets")
	duration := fs.Duration("duration", 5*time.Second, "send window length")
	sockets := fs.Int("sockets", 0, "sender sockets, each with its own pipeline (0 = GOMAXPROCS, capped at 8)")
	domains := fs.Int("domains", 1024, "distinct query names rotated through per socket")
	family := fs.String("family", "", "draw query names from this DGA family's pool (default: synthetic names)")
	seed := fs.Uint64("seed", 1, "with -family: pool seed")
	drain := fs.Duration("drain", time.Second, "after the send window, wait this long for in-flight responses")
	jsonPath := fs.String("json", "", "write the run summary as JSON to this file")
	benchJSON := fs.String("bench-json", "", "append a 'wire' series record for this run to the given BENCH_fig.json-style file")
	benchNote := fs.String("bench-note", "", "free-form comment stored on the -bench-json record")
	pidsFlag := fs.String("pipeline-pids", "", "comma-separated pids of the pipeline daemons; their /proc CPU and RSS deltas yield qps/core and the flat-memory check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive (open-loop needs a schedule)")
	}
	if *domains < 1 {
		return fmt.Errorf("-domains must be at least 1")
	}
	nsock := resolveSockets(*sockets)
	names, err := buildDomains(*domains, *family, *seed)
	if err != nil {
		return err
	}

	pids, err := parsePids(*pidsFlag)
	if err != nil {
		return err
	}

	hist := obs.NewRegistry().Histogram("loadgen_query_seconds", latencyBounds)
	workers := make([]*worker, nsock)
	for i := range workers {
		w, err := newWorker(*target, names, hist)
		if err != nil {
			for _, prev := range workers[:i] {
				prev.conn.Close()
			}
			return err
		}
		workers[i] = w
	}

	cpu0 := pipelineCPU(pids)
	rss0 := pipelineRSS(pids)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	selfCPU0 := selfCPU()
	start := time.Now()
	deadline := start.Add(*duration)

	var wg sync.WaitGroup
	// interval is the per-worker send period: worker w owns every nsock-th
	// slot of the global open-loop schedule.
	interval := float64(time.Second) * float64(nsock) / *rate
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			w.sendLoop(start.Add(time.Duration(float64(i)*float64(time.Second) / *rate)), deadline, interval)
		}(i, w)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.recvLoop()
		}(w)
	}

	// Senders stop at the deadline on their own; then the drain window lets
	// in-flight responses land before the sockets close under the receivers.
	time.Sleep(time.Until(deadline) + *drain)
	wall := time.Since(start) - *drain
	for _, w := range workers {
		w.conn.Close()
	}
	wg.Wait()

	selfCPU1 := selfCPU()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	cpu1 := pipelineCPU(pids)
	rss1 := pipelineRSS(pids)

	sum := Summary{
		Target:      *target,
		OfferedQPS:  *rate,
		DurationSec: wall.Seconds(),
		Sockets:     nsock,
		Domains:     len(names),
	}
	for _, w := range workers {
		sum.Sent += w.sent
		sum.Received += w.received
		sum.Overruns += w.overruns
		sum.Unmatched += w.unmatched
		sum.DecodeErrors += w.decodeErrs
	}
	sum.Drops = sum.Sent - sum.Received
	sum.AchievedQPS = float64(sum.Received) / wall.Seconds()
	sum.P50Sec = quantile(hist, 0.50)
	sum.P90Sec = quantile(hist, 0.90)
	sum.P99Sec = quantile(hist, 0.99)
	if n := hist.Count(); n > 0 {
		sum.MeanSec = hist.Sum() / float64(n)
	}
	if sum.Sent > 0 {
		sum.AllocsPerQuery = float64(m1.Mallocs-m0.Mallocs) / float64(sum.Sent)
	}
	sum.LoadgenCPUSec = selfCPU1 - selfCPU0
	if cpu0 >= 0 && cpu1 >= 0 {
		sum.PipelineCPUSec = cpu1 - cpu0
		if sum.PipelineCPUSec > 0 {
			sum.QPSPerCore = float64(sum.Received) / sum.PipelineCPUSec
		}
		sum.PipelineRSSMB0 = rss0
		sum.PipelineRSSMB1 = rss1
		sum.PipelineRSSGrow = rss1 - rss0
	}

	printSummary(stdout, &sum)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		if err := appendWireRecord(*benchJSON, &sum, wall, m1.Mallocs-m0.Mallocs,
			float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20), *benchNote); err != nil {
			return err
		}
	}
	return nil
}

// resolveSockets maps the -sockets flag to a sender count: explicit values
// win, 0 means one per CPU capped at 8 (mirroring the daemons' -listeners).
func resolveSockets(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// buildDomains produces the query-name rotation. With a family it draws the
// first n names of the family's epoch-0 pool (cycling when the pool is
// smaller), so the vantage's live estimator sees genuine AGDs; otherwise the
// names are synthetic, already lowercase, and collision-free.
func buildDomains(n int, family string, seed uint64) ([]string, error) {
	if family == "" {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("q%07d.wire.loadtest.example", i)
		}
		return names, nil
	}
	spec, ok := dga.Families()[family]
	if !ok {
		return nil, fmt.Errorf("unknown family %q (have %s)", family, strings.Join(dga.FamilyNames(), ", "))
	}
	pool := spec.Pool.PoolFor(seed, 0)
	if len(pool.Domains) == 0 {
		return nil, fmt.Errorf("family %q produced an empty pool", family)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = pool.Domains[i%len(pool.Domains)]
	}
	return names, nil
}

// worker is one sender socket's private pipeline. The sender goroutine owns
// sent/overruns and the packet buffers; the receiver goroutine owns
// received/unmatched/decodeErrs, the read buffer and the arena; the
// send-timestamp slots are the only shared state (atomics, indexed by the
// 16-bit DNS ID that travels with the packet).
type worker struct {
	conn  *net.UDPConn
	pkts  [][]byte
	slots []atomic.Int64 // 1<<16 send-time nanos, 0 = empty
	hist  *obs.Histogram

	sent     uint64 // sender-owned
	overruns uint64

	received   uint64 // receiver-owned
	unmatched  uint64
	decodeErrs uint64
	rbuf       []byte
	arena      dnswire.Arena
	msg        dnswire.Message
}

func newWorker(target string, names []string, hist *obs.Histogram) (*worker, error) {
	// A connected socket: Write/Read with no per-packet address handling,
	// and the kernel filters responses to this 5-tuple.
	conn, err := net.Dial("udp", target)
	if err != nil {
		return nil, err
	}
	uconn, ok := conn.(*net.UDPConn)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("target %s did not yield a UDP socket", target)
	}
	w := &worker{
		conn:  uconn,
		pkts:  make([][]byte, len(names)),
		slots: make([]atomic.Int64, 1<<16),
		hist:  hist,
		rbuf:  make([]byte, 65535),
	}
	// Pre-encode every query once; the send loop only patches the ID bytes
	// in place. Each worker gets private copies because of that patching.
	for i, name := range names {
		pkt, err := dnswire.NewQuery(0, name).Encode()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("encoding query for %q: %w", name, err)
		}
		w.pkts[i] = pkt
	}
	return w, nil
}

// sendLoop walks the worker's slice of the open-loop schedule: query k is
// due at start + k*interval, and a late schedule is caught up by sending
// back-to-back rather than by rescheduling — the offered load is fixed.
func (w *worker) sendLoop(start, deadline time.Time, interval float64) {
	seq := 0
	for {
		next := start.Add(time.Duration(float64(seq) * interval))
		if next.After(deadline) {
			return
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		pkt := w.pkts[seq%len(w.pkts)]
		id := uint16(seq)
		pkt[0] = byte(id >> 8)
		pkt[1] = byte(id)
		// Claim the ID slot before the write so the response can never
		// outrun its timestamp. A displaced older timestamp is an overrun:
		// the query 65536 sends ago never got an answer.
		if prev := w.slots[id].Swap(time.Now().UnixNano()); prev != 0 {
			w.overruns++
		}
		if _, err := w.conn.Write(pkt); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient send failure (e.g. ECONNREFUSED bounce on loopback):
			// the slot stays armed and ages into a drop.
		}
		w.sent++
		seq++
	}
}

// recvLoop matches responses back to their send timestamps and feeds the
// latency histogram. It exits when the socket closes under it.
func (w *worker) recvLoop() {
	for {
		n, err := w.conn.Read(w.rbuf)
		if err != nil {
			return // closed (shutdown) or fatal; either way the run is over
		}
		now := time.Now().UnixNano()
		if err := dnswire.DecodeInto(w.rbuf[:n], &w.msg, &w.arena); err != nil || !w.msg.Header.QR {
			w.decodeErrs++
			continue
		}
		t0 := w.slots[w.msg.Header.ID].Swap(0)
		if t0 == 0 {
			// Duplicate answer, or one so late its slot was overrun.
			w.unmatched++
			continue
		}
		w.received++
		w.hist.Observe(float64(now-t0) / 1e9)
	}
}

// quantile interpolates the q-quantile (0..1) from the histogram's
// per-bucket counts, linearly within the containing bucket. The +Inf bucket
// reports the last finite bound.
func quantile(h *obs.Histogram, q float64) float64 {
	bounds, counts := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// parsePids parses the -pipeline-pids list.
func parsePids(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var pids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pid, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("-pipeline-pids: %q is not a pid", part)
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

// selfCPU returns this process's user+system CPU seconds.
func selfCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}

// clockTick is the Linux USER_HZ for /proc/<pid>/stat utime/stime. The
// kernel ABI has pinned this at 100 for every architecture Go runs on; a
// wrong value would scale qps/core, not break it.
const clockTick = 100

// pipelineCPU sums user+system CPU seconds across pids from /proc. Returns
// -1 when no pids were given or /proc is unreadable (non-Linux), so callers
// can distinguish "no accounting" from "zero CPU".
func pipelineCPU(pids []int) float64 {
	if len(pids) == 0 {
		return -1
	}
	var total float64
	for _, pid := range pids {
		data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
		if err != nil {
			return -1
		}
		// Fields after the parenthesised comm (which may itself contain
		// spaces): state is field 0 of the remainder, utime 11, stime 12.
		i := strings.LastIndexByte(string(data), ')')
		if i < 0 {
			return -1
		}
		fields := strings.Fields(string(data[i+1:]))
		if len(fields) < 13 {
			return -1
		}
		ut, err1 := strconv.ParseUint(fields[11], 10, 64)
		st, err2 := strconv.ParseUint(fields[12], 10, 64)
		if err1 != nil || err2 != nil {
			return -1
		}
		total += float64(ut+st) / clockTick
	}
	return total
}

// pipelineRSS sums resident set sizes (MB) across pids from /proc, -1 when
// unavailable.
func pipelineRSS(pids []int) float64 {
	if len(pids) == 0 {
		return -1
	}
	var totalKB float64
	for _, pid := range pids {
		data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
		if err != nil {
			return -1
		}
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmRSS:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				kb, err := strconv.ParseFloat(f[1], 64)
				if err == nil {
					totalKB += kb
				}
			}
			break
		}
	}
	return totalKB / 1024
}

func printSummary(w io.Writer, s *Summary) {
	fmt.Fprintf(w, "loadgen: target=%s offered=%.0f qps duration=%.2fs sockets=%d domains=%d\n",
		s.Target, s.OfferedQPS, s.DurationSec, s.Sockets, s.Domains)
	fmt.Fprintf(w, "  sent=%d received=%d drops=%d overruns=%d unmatched=%d decode_errors=%d\n",
		s.Sent, s.Received, s.Drops, s.Overruns, s.Unmatched, s.DecodeErrors)
	fmt.Fprintf(w, "  achieved=%.0f qps  p50=%s p90=%s p99=%s mean=%s\n",
		s.AchievedQPS, fmtDur(s.P50Sec), fmtDur(s.P90Sec), fmtDur(s.P99Sec), fmtDur(s.MeanSec))
	fmt.Fprintf(w, "  loadgen: cpu=%.2fs allocs/query=%.3f\n", s.LoadgenCPUSec, s.AllocsPerQuery)
	if s.PipelineCPUSec != 0 || s.QPSPerCore != 0 {
		fmt.Fprintf(w, "  pipeline: cpu=%.2fs qps/core=%.0f rss=%.1f→%.1f MB (Δ%+.1f)\n",
			s.PipelineCPUSec, s.QPSPerCore, s.PipelineRSSMB0, s.PipelineRSSMB1, s.PipelineRSSGrow)
	}
}

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// wireRecord mirrors cmd/benchgen's BenchRecord schema so loadgen runs land
// in the same BENCH_fig.json trajectory as a new "wire" artifact series:
// one trial = one answered query, ns_per_trial = wall nanoseconds per
// answered query, allocs_per_trial = loadgen-side allocations per query.
type wireRecord struct {
	Artifact       string  `json:"artifact"`
	Workers        int     `json:"workers"`
	ResolvedW      int     `json:"resolved_workers"`
	CPUs           int     `json:"cpus"`
	GoVersion      string  `json:"go_version"`
	Trials         uint64  `json:"trials"`
	WallNS         int64   `json:"wall_ns"`
	NSPerTrial     int64   `json:"ns_per_trial"`
	AllocsPerTrial uint64  `json:"allocs_per_trial"`
	AllocMB        float64 `json:"alloc_mb"`
	RecordedAt     string  `json:"recorded_at"`
	Comment        string  `json:"comment,omitempty"`
}

func appendWireRecord(path string, s *Summary, wall time.Duration, mallocs uint64, allocMB float64, note string) error {
	comment := fmt.Sprintf("open-loop %.0f qps offered, %.0f achieved; p50=%s p99=%s; drops=%d",
		s.OfferedQPS, s.AchievedQPS, fmtDur(s.P50Sec), fmtDur(s.P99Sec), s.Drops)
	if s.QPSPerCore > 0 {
		comment += fmt.Sprintf("; pipeline %.0f qps/core, rss %+.1f MB", s.QPSPerCore, s.PipelineRSSGrow)
	}
	if note != "" {
		comment += "; " + note
	}
	rec := wireRecord{
		Artifact:   "wire",
		Workers:    s.Sockets,
		ResolvedW:  s.Sockets,
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Trials:     s.Received,
		WallNS:     wall.Nanoseconds(),
		AllocMB:    allocMB,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Comment:    comment,
	}
	if s.Received > 0 {
		rec.NSPerTrial = wall.Nanoseconds() / int64(s.Received)
		rec.AllocsPerTrial = mallocs / s.Received
	}
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("bench-json %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	out, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	records = append(records, out)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
