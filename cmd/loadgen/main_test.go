package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/obs"
)

// echoDNS answers every valid query with a positive A response on a
// loopback socket, standing in for the resolver as the load target.
func echoDNS(t *testing.T) (addr string, stop func()) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 65535)
		ip := net.ParseIP("192.0.2.7")
		for {
			n, from, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := dnswire.Decode(buf[:n])
			if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
				continue
			}
			resp, err := dnswire.NewResponse(msg, ip, 60).Encode()
			if err != nil {
				continue
			}
			conn.WriteTo(resp, from) //nolint:errcheck
		}
	}()
	return conn.LocalAddr().String(), func() {
		conn.Close()
		<-done
	}
}

// TestLoadgenAgainstEcho runs the full loadgen loop against a loopback
// echo server: every query must come back (zero drops, zero decode
// errors), the summary JSON must land, and the bench record must join the
// trajectory file as a "wire" artifact.
func TestLoadgenAgainstEcho(t *testing.T) {
	addr, stop := echoDNS(t)
	defer stop()
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "summary.json")
	benchPath := filepath.Join(dir, "bench.json")

	var out strings.Builder
	err := run([]string{
		"-target", addr,
		"-rate", "2000",
		"-duration", "300ms",
		"-drain", "300ms",
		"-sockets", "2",
		"-domains", "32",
		"-json", jsonPath,
		"-bench-json", benchPath,
		"-bench-note", "unit test",
		"-pipeline-pids", strconv.Itoa(os.Getpid()),
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sent == 0 {
		t.Fatal("no queries sent")
	}
	if sum.Drops != 0 || sum.Received != sum.Sent {
		t.Fatalf("loopback echo dropped queries: sent=%d received=%d drops=%d",
			sum.Sent, sum.Received, sum.Drops)
	}
	if sum.DecodeErrors != 0 {
		t.Fatalf("decode errors on echo responses: %d", sum.DecodeErrors)
	}
	if sum.P50Sec <= 0 || sum.P99Sec < sum.P50Sec {
		t.Fatalf("implausible quantiles: p50=%v p99=%v", sum.P50Sec, sum.P99Sec)
	}
	if sum.AchievedQPS <= 0 {
		t.Fatalf("achieved qps not reported: %+v", sum)
	}
	if runtime.GOOS == "linux" && sum.PipelineCPUSec < 0 {
		t.Fatalf("pipeline CPU accounting missing on linux: %+v", sum)
	}
	if !strings.Contains(out.String(), "achieved=") {
		t.Fatalf("human summary missing:\n%s", out.String())
	}

	bench, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var recs []wireRecord
	if err := json.Unmarshal(bench, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Artifact != "wire" {
		t.Fatalf("bench record not appended as wire series: %+v", recs)
	}
	if recs[0].Trials != sum.Received {
		t.Fatalf("bench trials %d != received %d", recs[0].Trials, sum.Received)
	}
	if !strings.Contains(recs[0].Comment, "unit test") {
		t.Fatalf("bench note lost: %q", recs[0].Comment)
	}
}

// TestLoadgenBenchAppendPreservesHistory verifies appends extend an
// existing trajectory file rather than rewriting it.
func TestLoadgenBenchAppendPreservesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`[{"artifact":"fig6a","trials":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := &Summary{OfferedQPS: 1000, AchievedQPS: 990, Received: 99, Sockets: 2}
	if err := appendWireRecord(path, sum, time.Second, 12, 0.5, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []wireRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Artifact != "fig6a" || recs[1].Artifact != "wire" {
		t.Fatalf("history not preserved: %+v", recs)
	}
	if recs[1].NSPerTrial != time.Second.Nanoseconds()/99 {
		t.Fatalf("ns_per_trial wrong: %d", recs[1].NSPerTrial)
	}
}

// TestQuantileInterpolation pins the bucket-interpolation math on a
// hand-checkable distribution.
func TestQuantileInterpolation(t *testing.T) {
	h := obs.NewRegistry().Histogram("q", []float64{1, 2, 4})
	// 10 samples in (0,1], 10 in (1,2]: the median sits exactly at the
	// bucket boundary, p25 at the midpoint of the first bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := quantile(h, 0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := quantile(h, 0.25); got != 0.5 {
		t.Fatalf("p25 = %v, want 0.5", got)
	}
	if got := quantile(h, 1.0); got != 2 {
		t.Fatalf("p100 = %v, want 2", got)
	}
	// All mass in +Inf: report the last finite bound rather than inventing
	// a value.
	inf := obs.NewRegistry().Histogram("inf", []float64{1, 2, 4})
	inf.Observe(100)
	if got := quantile(inf, 0.5); got != 4 {
		t.Fatalf("+Inf bucket p50 = %v, want 4", got)
	}
	empty := obs.NewRegistry().Histogram("e", []float64{1})
	if got := quantile(empty, 0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
}

// TestBuildDomains covers both name sources.
func TestBuildDomains(t *testing.T) {
	syn, err := buildDomains(3, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) != 3 || syn[0] == syn[1] {
		t.Fatalf("synthetic names wrong: %v", syn)
	}
	for _, d := range syn {
		if strings.ToLower(d) != d {
			t.Fatalf("synthetic name not canonical lowercase: %q", d)
		}
	}
	agd, err := buildDomains(5, "newgoz", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(agd) != 5 {
		t.Fatalf("agd names wrong: %v", agd)
	}
	if _, err := buildDomains(1, "no-such-family", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestParsePids covers the flag parser's error surface.
func TestParsePids(t *testing.T) {
	pids, err := parsePids(" 12, 34 ,")
	if err != nil || len(pids) != 2 || pids[0] != 12 || pids[1] != 34 {
		t.Fatalf("parsePids: %v %v", pids, err)
	}
	if _, err := parsePids("12,abc"); err == nil {
		t.Fatal("bad pid accepted")
	}
	none, err := parsePids("")
	if err != nil || none != nil {
		t.Fatalf("empty list: %v %v", none, err)
	}
}

// TestResolveSockets mirrors the daemons' listener resolution.
func TestResolveSockets(t *testing.T) {
	if got := resolveSockets(3); got != 3 {
		t.Fatalf("explicit count ignored: %d", got)
	}
	got := resolveSockets(0)
	if got < 1 || got > 8 {
		t.Fatalf("auto count out of range: %d", got)
	}
}

// TestPipelineCPUSelf exercises the /proc reader against this test process.
func TestPipelineCPUSelf(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc accounting is linux-only")
	}
	cpu := pipelineCPU([]int{os.Getpid()})
	if cpu < 0 {
		t.Fatal("own /proc stat unreadable")
	}
	rss := pipelineRSS([]int{os.Getpid()})
	if rss <= 0 {
		t.Fatalf("own RSS implausible: %v", rss)
	}
	if pipelineCPU(nil) != -1 || pipelineRSS(nil) != -1 {
		t.Fatal("empty pid list must report no accounting")
	}
	if pipelineCPU([]int{1 << 30}) != -1 {
		t.Fatal("nonexistent pid must report no accounting")
	}
}

// TestRateValidation rejects schedules the open loop cannot honour.
func TestRateValidation(t *testing.T) {
	if err := run([]string{"-rate", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := run([]string{"-domains", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("zero domains accepted")
	}
	if err := run([]string{"-pipeline-pids", "x"}, &strings.Builder{}); err == nil {
		t.Fatal("bad pid list accepted")
	}
}
