// Command resolver is a minimal caching-and-forwarding local DNS server —
// the live counterpart of the simulator's dnssim.Server and the lower tier
// of the paper's Figure 1. It serves clients over UDP, answers from its
// positive/negative cache, and forwards misses to an upstream server (for
// demos: cmd/vantage). Together the two daemons realise the paper's
// hierarchy end to end:
//
//	vantage  -listen 127.0.0.1:5300 -zone c2.txt -observed obs.jsonl &
//	resolver -listen 127.0.0.1:5301 -upstream 127.0.0.1:5300 &
//	# point clients (or dgasim -live) at 127.0.0.1:5301, then:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
//
// The forwarder degrades gracefully when the upstream misbehaves: failed
// attempts are retried with exponential backoff and jitter under a
// per-query deadline, responses are validated against the outstanding
// query (header ID and question) before being cached or relayed, and when
// every attempt fails the resolver answers from expired cache entries
// (RFC 8767 serve-stale) before resorting to SERVFAIL. The -chaos flag
// injects deterministic faults on the client-facing socket for testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/dnssim"
	"botmeter/internal/dnswire"
	"botmeter/internal/faults"
	"botmeter/internal/netx"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
)

// staleAnswerTTL is the TTL advertised on answers served past their
// expiry, per RFC 8767 §5's recommendation to keep stale TTLs short.
const staleAnswerTTL = 30

// unhealthyFailStreak is the number of consecutive upstream retry
// exhaustions after which /healthz reports the resolver degraded: one
// failed query is routine packet loss, a streak means the upstream is dark
// and clients are living off stale answers and SERVFAILs.
const unhealthyFailStreak = 3

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "resolver:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("resolver", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5301", "UDP address to serve clients on")
	upstream := fs.String("upstream", "127.0.0.1:5300", "upstream DNS server (border/vantage)")
	posTTL := fs.Duration("positive-ttl", 24*time.Hour, "positive cache TTL")
	negTTL := fs.Duration("negative-ttl", 2*time.Hour, "negative cache TTL")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt upstream query timeout")
	retries := fs.Int("retries", 2, "upstream retransmissions after a failed attempt")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	deadline := fs.Duration("deadline", 5*time.Second, "overall per-query deadline across all attempts")
	serveStale := fs.Duration("serve-stale", time.Hour, "how long past expiry cached answers may be served when the upstream is unreachable (0 disables)")
	chaosSpec := fs.String("chaos", "", "inject faults on the client socket, e.g. loss=0.2,dup=0.01,delay=5ms,blackout=10s+2s")
	chaosSeed := fs.Uint64("chaos-seed", 1, "seed for deterministic fault injection")
	wireFast := fs.Bool("wire-fast", true, "zero-copy sharded wire path (arena decode, per-socket cache shards); false selects the single-socket slow path")
	listeners := fs.Int("listeners", 0, "with the wire fast path: SO_REUSEPORT listener sockets (0 = GOMAXPROCS, capped at 8)")
	obsAddr := fs.String("obs-addr", "", "HTTP diagnostics address serving /metrics, /healthz, /debug/vars, /debug/spans and /debug/pprof (empty disables)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "logfmt", "log encoding: logfmt or json")
	traceSample := fs.Int("trace-sample", 16, "trace 1 in N queries as lifecycle spans (requires -obs-addr; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(logw, obs.LogConfig{Level: level, Format: format, Component: "resolver"})
	rates, err := faults.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}

	// Observability is opt-in: without -obs-addr the registry and tracer
	// stay nil and every instrument call in the hot path is a no-op branch.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		if *traceSample > 0 {
			tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: *traceSample})
		}
	}

	// The wire fast path is the default; chaos injection demotes to the
	// single-socket slow path, whose PacketConn wrapper and deterministic
	// single-stream RNG the fault model is defined against.
	useFast := *wireFast
	if rates.Enabled() && useFast {
		useFast = false
		logger.Info("chaos enabled: using the single-socket slow path")
	}
	var conns []net.PacketConn
	var inj *faults.Injector
	if useFast {
		var reuse bool
		conns, reuse, err = netx.ListenUDP(ctx, *listen, resolveListeners(*listeners))
		if err != nil {
			return err
		}
		if tracer != nil {
			logger.Info("wire fast path skips per-query spans (use -wire-fast=false to trace)")
		}
		logger.Info("serving (wire fast path)",
			"listen", conns[0].LocalAddr().String(),
			"listeners", len(conns),
			"reuseport", reuse,
			"upstream", *upstream,
			"retries", *retries,
			"serve_stale", serveStale.String())
	} else {
		conn, err := net.ListenPacket("udp", *listen)
		if err != nil {
			return err
		}
		if rates.Enabled() {
			inj = faults.New(*chaosSeed, rates)
			inj.Instrument(reg)
			conn = faults.WrapPacketConn(conn, inj)
			logger.Warn("chaos enabled on client socket", "rates", rates.String(), "seed", *chaosSeed)
		}
		conns = []net.PacketConn{conn}
		logger.Info("serving",
			"listen", conn.LocalAddr().String(),
			"upstream", *upstream,
			"retries", *retries,
			"serve_stale", serveStale.String())
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	fwd := newForwarder(forwarderConfig{
		upstream:   *upstream,
		timeout:    *timeout,
		retries:    *retries,
		backoff:    *backoff,
		deadline:   *deadline,
		serveStale: sim.FromDuration(*serveStale),
		posTTL:     sim.FromDuration(*posTTL),
		negTTL:     sim.FromDuration(*negTTL),
		seed:       *chaosSeed ^ 0xf0f0,
		reg:        reg,
		tracer:     tracer,
	})
	if *obsAddr != "" {
		diag, err := obs.StartHTTP(*obsAddr, obs.NewMux(obs.MuxConfig{
			Registry: reg,
			Tracer:   tracer,
			Health:   fwd.health,
		}))
		if err != nil {
			return err
		}
		defer diag.Close()
		logger.Info("diagnostics listening", "obs_addr", diag.Addr())
	}
	done := make(chan error, 1)
	if useFast {
		go func() { done <- fwd.wireServe(conns) }()
	} else {
		go func() { done <- fwd.serve(conns[0]) }()
	}
	defer func() {
		c := fwd.counters()
		logger.Info("final counters",
			"queries", c.queries, "forwarded", c.forwarded, "retried", c.retried,
			"mismatched", c.mismatched, "stale_served", c.staleServed, "servfails", c.servfails)
		if inj != nil {
			logger.Info("chaos counters", "counters", inj.Counters().String())
		}
	}()
	select {
	case <-ctx.Done():
		for _, c := range conns {
			c.Close()
		}
		<-done
		return nil
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			return err
		}
		return nil
	}
}

// resolveListeners maps the -listeners flag onto a socket count: 0 asks for
// one socket per scheduler thread, capped at 8 (beyond that the loopback
// benchmark shows the kernel flow hash, not socket count, is the limit).
func resolveListeners(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// forwarderConfig bundles the forwarder's resilience policy.
type forwarderConfig struct {
	upstream string
	// timeout bounds one upstream attempt; deadline bounds the whole
	// query including retries and backoff sleeps.
	timeout  time.Duration
	deadline time.Duration
	// retries is how many retransmissions follow a failed first attempt.
	retries int
	// backoff is the initial inter-attempt backoff; each retry doubles it
	// and draws a jittered sleep from [backoff/2, backoff).
	backoff time.Duration
	// serveStale, when positive, answers from cache entries up to this
	// long past expiry when every upstream attempt fails.
	serveStale sim.Time
	posTTL     sim.Time
	negTTL     sim.Time
	seed       uint64
	// reg and tracer enable metrics and query-lifecycle spans; both may be
	// nil (the default in tests), which disables instrumentation.
	reg    *obs.Registry
	tracer *obs.Tracer
}

func (c forwarderConfig) withDefaults() forwarderConfig {
	if c.timeout <= 0 {
		c.timeout = 2 * time.Second
	}
	if c.deadline <= 0 {
		c.deadline = 5 * time.Second
	}
	if c.backoff <= 0 {
		c.backoff = 50 * time.Millisecond
	}
	return c
}

// forwarder answers from cache and forwards misses upstream with
// retry/backoff and serve-stale degradation.
type forwarder struct {
	cfg     forwarderConfig
	started time.Time
	tracer  *obs.Tracer

	mu    sync.Mutex
	cache *dnssim.Cache
	rng   *sim.RNG // jitter source (seeded: backoff schedules replay deterministically)

	// failStreak counts consecutive queries whose upstream attempts all
	// failed; /healthz degrades at unhealthyFailStreak. Guarded by mu.
	failStreak int

	forwarderCounters
	m resolverMetrics
}

// Metric families exported by the resolver daemon.
const (
	metricQueries     = "resolver_queries_total"
	metricForwarded   = "resolver_forwarded_total"
	metricRetries     = "resolver_retries_total"
	metricMismatched  = "resolver_mismatched_total"
	metricStaleServed = "resolver_stale_served_total"
	metricServFails   = "resolver_servfails_total"
	metricQuerySecs   = "resolver_query_seconds"
	metricAttemptSecs = "resolver_upstream_attempt_seconds"
	metricFailStreak  = "resolver_upstream_consecutive_failures"
)

// resolverMetrics carries the forwarder's pre-resolved instruments; zero
// value = disabled (obs instruments are nil-safe).
type resolverMetrics struct {
	queries     *obs.Counter
	forwarded   *obs.Counter
	retried     *obs.Counter
	mismatched  *obs.Counter
	staleServed *obs.Counter
	servfails   *obs.Counter
	querySecs   *obs.Histogram
	attemptSecs *obs.Histogram
	failStreak  *obs.Gauge
}

func newResolverMetrics(reg *obs.Registry) resolverMetrics {
	reg.Help(metricQueries, "Client datagrams parsed as queries.")
	reg.Help(metricForwarded, "Queries answered via the upstream.")
	reg.Help(metricRetries, "Upstream retransmissions.")
	reg.Help(metricMismatched, "Upstream datagrams rejected by ID/question validation.")
	reg.Help(metricStaleServed, "Answers served past their TTL (RFC 8767 serve-stale).")
	reg.Help(metricServFails, "Client-visible SERVFAILs after retry exhaustion.")
	reg.Help(metricQuerySecs, "Wall-clock seconds handling one client query.")
	reg.Help(metricAttemptSecs, "Wall-clock seconds per upstream exchange attempt.")
	reg.Help(metricFailStreak, "Consecutive queries whose upstream attempts all failed (0 = healthy).")
	return resolverMetrics{
		queries:     reg.Counter(metricQueries),
		forwarded:   reg.Counter(metricForwarded),
		retried:     reg.Counter(metricRetries),
		mismatched:  reg.Counter(metricMismatched),
		staleServed: reg.Counter(metricStaleServed),
		servfails:   reg.Counter(metricServFails),
		querySecs:   reg.Histogram(metricQuerySecs, obs.LatencyBuckets),
		attemptSecs: reg.Histogram(metricAttemptSecs, obs.LatencyBuckets),
		failStreak:  reg.Gauge(metricFailStreak),
	}
}

// forwarderCounters tallies the forwarder's traffic and degradation events.
type forwarderCounters struct {
	queries     int // client datagrams parsed as queries
	forwarded   int // queries answered via the upstream
	retried     int // upstream retransmissions
	mismatched  int // upstream datagrams rejected by ID/question validation
	staleServed int // answers served past their TTL (RFC 8767)
	servfails   int // client-visible SERVFAILs
}

func (c forwarderCounters) String() string {
	return fmt.Sprintf("queries=%d forwarded=%d retried=%d mismatched=%d stale-served=%d servfails=%d",
		c.queries, c.forwarded, c.retried, c.mismatched, c.staleServed, c.servfails)
}

func newForwarder(cfg forwarderConfig) *forwarder {
	cfg = cfg.withDefaults()
	cache := dnssim.NewCache(cfg.posTTL, cfg.negTTL)
	cache.StaleTTL = cfg.serveStale
	f := &forwarder{
		cfg:     cfg,
		cache:   cache,
		rng:     sim.NewRNG(cfg.seed),
		started: time.Now(),
		tracer:  cfg.tracer,
	}
	if cfg.reg != nil {
		f.m = newResolverMetrics(cfg.reg)
		cache.Instrument(cfg.reg, "level", "resolver")
	}
	return f
}

// health implements the /healthz probe: unhealthy while a streak of
// queries has exhausted upstream retries (the upstream is dark).
func (f *forwarder) health() error {
	f.mu.Lock()
	streak := f.failStreak
	f.mu.Unlock()
	if streak >= unhealthyFailStreak {
		return fmt.Errorf("upstream %s unreachable: %d consecutive queries exhausted retries", f.cfg.upstream, streak)
	}
	return nil
}

// now maps wall time onto the cache's virtual clock.
func (f *forwarder) now() sim.Time {
	return sim.FromDuration(time.Since(f.started))
}

func (f *forwarder) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		pkt := append([]byte(nil), buf[:n]...)
		resp := f.handle(pkt)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle serves one client datagram: cache first, upstream on miss, stale
// cache as the last resort before SERVFAIL. A sampled query carries a
// lifecycle span from client arrival through cache, upstream attempts and
// degradation to the final answer.
func (f *forwarder) handle(pkt []byte) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := dnswire.CanonicalLower(msg.Questions[0].Name)
	now := f.now()
	var t0 time.Time
	if f.m.querySecs != nil {
		t0 = time.Now()
	}
	span := f.tracer.Start("resolver.query", "domain", domain)
	defer span.End()

	f.mu.Lock()
	f.queries++
	ans, hit := f.cache.Lookup(now, domain)
	f.mu.Unlock()
	f.m.queries.Inc()
	if hit {
		span.Event("cache_hit", "nx", fmt.Sprint(ans.NX))
		span.SetAttr("outcome", "cache_hit")
		f.observeQuery(t0)
		return encodeAnswer(msg, ans.NX, 60)
	}
	span.Event("cache_miss")

	upstreamResp, parsed, err := f.forward(pkt, msg, span)
	if err != nil {
		span.Event("upstream_failed", "err", err.Error())
		// Graceful degradation: an expired answer beats no answer while
		// the upstream is dark (RFC 8767).
		f.mu.Lock()
		stale, ok := f.cache.LookupStale(now, domain)
		if ok {
			f.staleServed++
		} else {
			f.servfails++
		}
		f.failStreak++
		streak := f.failStreak
		f.mu.Unlock()
		f.m.failStreak.Set(float64(streak))
		if ok {
			f.m.staleServed.Inc()
			span.SetAttr("outcome", "stale")
			f.observeQuery(t0)
			return encodeAnswer(msg, stale.NX, staleAnswerTTL)
		}
		f.m.servfails.Inc()
		span.SetAttr("outcome", "servfail")
		f.observeQuery(t0)
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: msg.Header.ID, QR: true, RD: msg.Header.RD, Rcode: dnswire.RcodeServFail},
			Questions: msg.Questions,
		}
		wire, encErr := servfail.Encode()
		if encErr != nil {
			return nil
		}
		return wire
	}
	f.mu.Lock()
	f.forwarded++
	f.failStreak = 0
	f.cache.Store(now, domain, parsed.Header.Rcode == dnswire.RcodeNXDomain)
	f.mu.Unlock()
	f.m.forwarded.Inc()
	f.m.failStreak.Set(0)
	span.Event("upstream_ok", "rcode", fmt.Sprint(parsed.Header.Rcode))
	span.SetAttr("outcome", "forwarded")
	f.observeQuery(t0)
	return upstreamResp
}

// observeQuery records the wall latency of one handled query when metrics
// are enabled (t0 is zero otherwise).
func (f *forwarder) observeQuery(t0 time.Time) {
	if f.m.querySecs != nil && !t0.IsZero() {
		f.m.querySecs.Observe(time.Since(t0).Seconds())
	}
}

// encodeAnswer builds a cached/stale response. Cached positives return the
// sinkhole address; a production resolver would cache the full RRset.
func encodeAnswer(q *dnswire.Message, nx bool, ttl uint32) []byte {
	var resp *dnswire.Message
	if nx {
		resp = dnswire.NewResponse(q, nil, 0)
	} else {
		resp = dnswire.NewResponse(q, net.ParseIP("192.0.2.1"), ttl)
	}
	wire, err := resp.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// forward relays the raw query upstream with retries, exponential backoff
// with jitter, and a per-query deadline. Only responses whose header ID and
// question match the query are accepted (off-path datagrams, late answers
// to earlier queries and chaos-duplicated packets are counted and
// dropped); upstream SERVFAILs count as failed attempts so they are
// retried rather than cached.
func (f *forwarder) forward(pkt []byte, q *dnswire.Message, span *obs.Span) ([]byte, *dnswire.Message, error) {
	overall := time.Now().Add(f.cfg.deadline)
	backoff := f.cfg.backoff
	var lastErr error
	for attempt := 0; attempt <= f.cfg.retries; attempt++ {
		if attempt > 0 {
			f.mu.Lock()
			f.retried++
			// Full-ish jitter: uniform in [backoff/2, backoff).
			sleep := backoff/2 + time.Duration(f.rng.Int64N(int64(backoff/2)+1))
			f.mu.Unlock()
			f.m.retried.Inc()
			span.Event("retry", "attempt", fmt.Sprint(attempt), "backoff", sleep.String())
			if remaining := time.Until(overall); sleep > remaining {
				sleep = remaining
			}
			if sleep > 0 {
				time.Sleep(sleep)
			}
			backoff *= 2
		}
		if time.Now().After(overall) {
			break
		}
		span.Event("upstream_attempt", "attempt", fmt.Sprint(attempt))
		wire, parsed, err := f.attempt(pkt, q, overall)
		if err == nil {
			return wire, parsed, nil
		}
		span.Event("attempt_failed", "attempt", fmt.Sprint(attempt), "err", err.Error())
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("query deadline %s exhausted", f.cfg.deadline)
	}
	return nil, nil, lastErr
}

// upstreamBufPool recycles the datagram-sized read buffer of one upstream
// attempt; at high miss rates the per-attempt 64 KiB make was measurable.
var upstreamBufPool = sync.Pool{
	New: func() any { b := make([]byte, 65535); return &b },
}

// attempt performs one upstream exchange, reading until a validated
// response arrives or the attempt deadline passes.
func (f *forwarder) attempt(pkt []byte, q *dnswire.Message, overall time.Time) ([]byte, *dnswire.Message, error) {
	if f.m.attemptSecs != nil {
		defer func(t0 time.Time) { f.m.attemptSecs.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	c, err := net.Dial("udp", f.cfg.upstream)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	deadline := time.Now().Add(f.cfg.timeout)
	if deadline.After(overall) {
		deadline = overall
	}
	if err := c.SetDeadline(deadline); err != nil {
		return nil, nil, err
	}
	if _, err := c.Write(pkt); err != nil {
		return nil, nil, err
	}
	bufp := upstreamBufPool.Get().(*[]byte)
	defer upstreamBufPool.Put(bufp)
	buf := *bufp
	for {
		n, err := c.Read(buf)
		if err != nil {
			return nil, nil, err
		}
		parsed, err := dnswire.Decode(buf[:n])
		if err != nil || !f.matches(parsed, q) {
			// Not the answer to our question: keep listening until the
			// attempt deadline rather than poisoning the cache.
			f.mu.Lock()
			f.mismatched++
			f.mu.Unlock()
			f.m.mismatched.Inc()
			continue
		}
		if parsed.Header.Rcode == dnswire.RcodeServFail {
			return nil, nil, fmt.Errorf("upstream answered SERVFAIL")
		}
		return append([]byte(nil), buf[:n]...), parsed, nil
	}
}

// matches validates an upstream datagram against the outstanding query:
// it must be a response carrying the same header ID and the same question
// name (case-insensitively, per RFC 1035 §2.3.3).
func (f *forwarder) matches(resp, q *dnswire.Message) bool {
	if !resp.Header.QR || resp.Header.ID != q.Header.ID || len(resp.Questions) == 0 {
		return false
	}
	return strings.EqualFold(resp.Questions[0].Name, q.Questions[0].Name)
}

// stats reports the basic counters (for tests).
func (f *forwarder) stats() (queries, forwarded int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries, f.forwarded
}

// counters snapshots all counters.
func (f *forwarder) counters() forwarderCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.forwarderCounters
}
