// Command resolver is a minimal caching-and-forwarding local DNS server —
// the live counterpart of the simulator's dnssim.Server and the lower tier
// of the paper's Figure 1. It serves clients over UDP, answers from its
// positive/negative cache, and forwards misses to an upstream server (for
// demos: cmd/vantage). Together the two daemons realise the paper's
// hierarchy end to end:
//
//	vantage  -listen 127.0.0.1:5300 -zone c2.txt -observed obs.jsonl &
//	resolver -listen 127.0.0.1:5301 -upstream 127.0.0.1:5300 &
//	# point clients (or dgasim -live) at 127.0.0.1:5301, then:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/dnssim"
	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "resolver:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("resolver", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5301", "UDP address to serve clients on")
	upstream := fs.String("upstream", "127.0.0.1:5300", "upstream DNS server (border/vantage)")
	posTTL := fs.Duration("positive-ttl", 24*time.Hour, "positive cache TTL")
	negTTL := fs.Duration("negative-ttl", 2*time.Hour, "negative cache TTL")
	timeout := fs.Duration("timeout", 2*time.Second, "upstream query timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(logw, "resolver: serving on %s, forwarding misses to %s\n",
		conn.LocalAddr(), *upstream)

	fwd := &forwarder{
		upstream: *upstream,
		timeout:  *timeout,
		cache:    dnssim.NewCache(sim.FromDuration(*posTTL), sim.FromDuration(*negTTL)),
		started:  time.Now(),
	}
	done := make(chan error, 1)
	go func() { done <- fwd.serve(conn) }()
	select {
	case <-ctx.Done():
		conn.Close()
		<-done
		return nil
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			return err
		}
		return nil
	}
}

// forwarder answers from cache and forwards misses upstream.
type forwarder struct {
	upstream string
	timeout  time.Duration
	started  time.Time

	mu    sync.Mutex
	cache *dnssim.Cache

	queries   int
	forwarded int
}

// now maps wall time onto the cache's virtual clock.
func (f *forwarder) now() sim.Time {
	return sim.FromDuration(time.Since(f.started))
}

func (f *forwarder) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if strings.Contains(err.Error(), "use of closed") {
				return nil
			}
			return err
		}
		pkt := append([]byte(nil), buf[:n]...)
		resp := f.handle(pkt)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle serves one client datagram: cache first, upstream on miss.
func (f *forwarder) handle(pkt []byte) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := strings.ToLower(msg.Questions[0].Name)
	now := f.now()

	f.mu.Lock()
	f.queries++
	ans, hit := f.cache.Lookup(now, domain)
	f.mu.Unlock()
	if hit {
		var resp *dnswire.Message
		if ans.NX {
			resp = dnswire.NewResponse(msg, nil, 0)
		} else {
			// Cached positives return the sinkhole address; a production
			// resolver would cache the full RRset.
			resp = dnswire.NewResponse(msg, net.ParseIP("192.0.2.1"), 60)
		}
		wire, err := resp.Encode()
		if err != nil {
			return nil
		}
		return wire
	}

	upstreamResp, err := f.forward(pkt)
	if err != nil {
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: msg.Header.ID, QR: true, RD: msg.Header.RD, Rcode: dnswire.RcodeServFail},
			Questions: msg.Questions,
		}
		wire, encErr := servfail.Encode()
		if encErr != nil {
			return nil
		}
		return wire
	}
	if parsed, err := dnswire.Decode(upstreamResp); err == nil {
		f.mu.Lock()
		f.forwarded++
		f.cache.Store(now, domain, parsed.Header.Rcode == dnswire.RcodeNXDomain)
		f.mu.Unlock()
	}
	return upstreamResp
}

// forward relays the raw query upstream and returns the raw response.
func (f *forwarder) forward(pkt []byte) ([]byte, error) {
	c, err := net.Dial("udp", f.upstream)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(f.timeout)); err != nil {
		return nil, err
	}
	if _, err := c.Write(pkt); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	n, err := c.Read(buf)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf[:n]...), nil
}

// stats reports counters (for tests).
func (f *forwarder) stats() (queries, forwarded int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries, f.forwarded
}
