package main

import (
	"fmt"
	"net"
	"testing"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/faults"
	"botmeter/internal/sim"
)

// startChaoticUpstream runs a vantage-like authoritative sink whose socket
// is wrapped with the fault injector: registered domains resolve,
// everything else is NXDOMAIN, and every datagram in either direction may
// be dropped/duplicated per the injector's seeded decision stream.
func startChaoticUpstream(t *testing.T, inj *faults.Injector, registered map[string]bool) net.PacketConn {
	t.Helper()
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	conn := faults.WrapPacketConn(raw, inj)
	go func() {
		buf := make([]byte, 65535)
		for {
			n, addr, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := dnswire.Decode(buf[:n])
			if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
				continue
			}
			var ip net.IP
			if registered[msg.Questions[0].Name] {
				ip = net.ParseIP("192.0.2.50")
			}
			wire, err := dnswire.NewResponse(msg, ip, 60).Encode()
			if err == nil {
				conn.WriteTo(wire, addr)
			}
		}
	}()
	t.Cleanup(func() { raw.Close() })
	return raw
}

// chaosScenario drives nDomains sequential lookups through a forwarder
// whose upstream sits behind 20% injected per-direction loss, and returns
// the rcode sequence plus final counters — the replayable outcome.
func chaosScenario(t *testing.T, seed uint64, retries int, serveStale sim.Time) (string, forwarderCounters, faults.Counters) {
	t.Helper()
	inj := faults.New(seed, faults.Rates{Loss: 0.2})
	up := startChaoticUpstream(t, inj, map[string]bool{"c2.chaos.example": true})
	f := newForwarder(forwarderConfig{
		upstream:   up.LocalAddr().String(),
		timeout:    120 * time.Millisecond,
		deadline:   2 * time.Second,
		retries:    retries,
		backoff:    2 * time.Millisecond,
		serveStale: serveStale,
		posTTL:     sim.Day,
		negTTL:     2 * sim.Hour,
		seed:       seed,
	})
	rcodes := ""
	for i := 0; i < 12; i++ {
		domain := fmt.Sprintf("dga-%02d.chaos.example", i)
		if i == 6 {
			domain = "c2.chaos.example"
		}
		m := query(t, f, uint16(100+i), domain)
		rcodes += fmt.Sprintf("%d", m.Header.Rcode)
	}
	return rcodes, f.counters(), inj.Counters()
}

// TestChaosLoopbackRetriesAbsorbLoss is the live-pipeline chaos
// integration test: resolver↔vantage-style loopback under 20% injected
// loss. With retries the client sees zero SERVFAILs; without them it
// doesn't; and a fixed seed replays byte-identically.
func TestChaosLoopbackRetriesAbsorbLoss(t *testing.T) {
	const seed = 3

	// (a) Retries on: the loss is absorbed, no client-visible SERVFAIL.
	rcodes, fc, ic := chaosScenario(t, seed, 6, sim.Hour)
	if fc.servfails != 0 {
		t.Errorf("with retries: %d client-visible SERVFAILs (counters %s, chaos %s)", fc.servfails, fc, ic)
	}
	if fc.retried == 0 {
		t.Errorf("with retries: no retransmissions despite %s", ic)
	}
	if ic.Lost == 0 {
		t.Fatalf("injector never fired: %s", ic)
	}

	// (b) Retries and serve-stale off: the same fault rate leaks SERVFAILs.
	_, fc0, _ := chaosScenario(t, seed, 0, 0)
	if fc0.servfails == 0 {
		t.Errorf("without retries: zero SERVFAILs under 20%% loss (counters %s)", fc0)
	}

	// (c) Deterministic replay: identical seed, byte-identical outcome.
	rcodes2, fc2, ic2 := chaosScenario(t, seed, 6, sim.Hour)
	if rcodes2 != rcodes {
		t.Errorf("rcode sequence diverged across runs: %q vs %q", rcodes, rcodes2)
	}
	if fc2 != fc {
		t.Errorf("forwarder counters diverged: %+v vs %+v", fc, fc2)
	}
	if ic2 != ic {
		t.Errorf("injector counters diverged: %s vs %s", ic, ic2)
	}
}

// TestChaosBlackoutServeStale primes the resolver's cache, then drops the
// upstream into a blackout window; serve-stale keeps answering, and
// disabling it surfaces the outage as SERVFAIL.
func TestChaosBlackoutServeStale(t *testing.T) {
	const seed = 11
	// Blackout from the injector's birth for 10 minutes: every datagram to
	// or from the upstream is swallowed for the whole test.
	dark := faults.Rates{Blackouts: []sim.Window{{Start: 0, End: 10 * sim.Minute}}}

	prime := func(staleTTL sim.Time) *forwarder {
		clear := startChaoticUpstream(t, faults.New(seed, faults.Rates{}), map[string]bool{"c2.dark.example": true})
		f := newForwarder(forwarderConfig{
			upstream:   clear.LocalAddr().String(),
			timeout:    100 * time.Millisecond,
			deadline:   300 * time.Millisecond,
			retries:    1,
			backoff:    2 * time.Millisecond,
			serveStale: staleTTL,
			posTTL:     sim.FromDuration(50 * time.Millisecond),
			negTTL:     sim.FromDuration(50 * time.Millisecond),
			seed:       seed,
		})
		if m := query(t, f, 21, "c2.dark.example"); m.Header.Rcode != dnswire.RcodeNoError {
			t.Fatalf("priming failed: %+v", m)
		}
		// Re-point the forwarder at a blacked-out upstream and let the
		// cached entry expire.
		darkUp := startChaoticUpstream(t, faults.New(seed, dark), map[string]bool{"c2.dark.example": true})
		f.cfg.upstream = darkUp.LocalAddr().String()
		time.Sleep(80 * time.Millisecond)
		return f
	}

	f := prime(sim.Hour)
	m := query(t, f, 22, "c2.dark.example")
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("blackout + serve-stale: %+v (counters %s)", m, f.counters())
	}
	if c := f.counters(); c.staleServed != 1 || c.servfails != 0 {
		t.Errorf("blackout counters = %s, want staleServed=1 servfails=0", c)
	}

	f2 := prime(0)
	if m := query(t, f2, 23, "c2.dark.example"); m.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("blackout without serve-stale: rcode = %d, want SERVFAIL", m.Header.Rcode)
	}
}
