package main

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
)

// scriptedUpstream answers each query according to a script keyed by the
// 1-based arrival count, letting tests simulate drops, mismatched
// datagrams and SERVFAIL bursts precisely.
type scriptedUpstream struct {
	conn     net.PacketConn
	received atomic.Int64
}

// startScriptedUpstream serves UDP; for every query it calls script with
// the arrival count and sends back each returned datagram (none = drop).
func startScriptedUpstream(t *testing.T, script func(q *dnswire.Message, count int) [][]byte) *scriptedUpstream {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	u := &scriptedUpstream{conn: conn}
	go func() {
		buf := make([]byte, 65535)
		for {
			n, addr, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := dnswire.Decode(buf[:n])
			if err != nil || len(msg.Questions) == 0 {
				continue
			}
			count := int(u.received.Add(1))
			for _, resp := range script(msg, count) {
				conn.WriteTo(resp, addr)
			}
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return u
}

func positiveResponse(t *testing.T, q *dnswire.Message) []byte {
	t.Helper()
	wire, err := dnswire.NewResponse(q, net.ParseIP("192.0.2.77"), 60).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestForwarderRetriesRecover drops the first attempt; the retransmission
// must succeed without any client-visible failure.
func TestForwarderRetriesRecover(t *testing.T) {
	up := startScriptedUpstream(t, func(q *dnswire.Message, count int) [][]byte {
		if count == 1 {
			return nil // first attempt lost
		}
		return [][]byte{positiveResponse(t, q)}
	})
	f := newForwarder(forwarderConfig{
		upstream: up.conn.LocalAddr().String(),
		timeout:  150 * time.Millisecond,
		deadline: 2 * time.Second,
		retries:  2,
		backoff:  5 * time.Millisecond,
		posTTL:   sim.Day,
		negTTL:   2 * sim.Hour,
		seed:     1,
	})
	m := query(t, f, 7, "retry.example.com")
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("recovered answer = %+v", m)
	}
	c := f.counters()
	if c.retried < 1 {
		t.Errorf("retried = %d, want >= 1", c.retried)
	}
	if c.servfails != 0 {
		t.Errorf("servfails = %d, want 0", c.servfails)
	}
}

// TestForwarderValidatesResponses sends a wrong-ID datagram and a
// wrong-question datagram ahead of the real answer; both must be rejected
// (counted, not cached, not relayed) and the true answer must win within
// the same attempt.
func TestForwarderValidatesResponses(t *testing.T) {
	up := startScriptedUpstream(t, func(q *dnswire.Message, count int) [][]byte {
		spoofedID := dnswire.NewResponse(dnswire.NewQuery(q.Header.ID+1, q.Questions[0].Name), net.ParseIP("203.0.113.66"), 60)
		spoofWire, err := spoofedID.Encode()
		if err != nil {
			t.Error(err)
		}
		wrongQ := dnswire.NewResponse(dnswire.NewQuery(q.Header.ID, "not-what-you-asked.example"), net.ParseIP("203.0.113.66"), 60)
		wrongQWire, err := wrongQ.Encode()
		if err != nil {
			t.Error(err)
		}
		return [][]byte{spoofWire, wrongQWire, positiveResponse(t, q)}
	})
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	m := query(t, f, 42, "target.example.com")
	if m.Header.ID != 42 || m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("validated answer = %+v", m)
	}
	if !net.IP(m.Answers[0].Data).Equal(net.ParseIP("192.0.2.77")) {
		t.Errorf("answer IP = %v (cache poisoned by spoof?)", net.IP(m.Answers[0].Data))
	}
	if c := f.counters(); c.mismatched != 2 {
		t.Errorf("mismatched = %d, want 2", c.mismatched)
	}
}

// TestForwarderRetriesUpstreamServfail treats an upstream SERVFAIL as a
// failed attempt: it must be retried, never cached, and the eventual
// positive answer relayed.
func TestForwarderRetriesUpstreamServfail(t *testing.T) {
	up := startScriptedUpstream(t, func(q *dnswire.Message, count int) [][]byte {
		if count == 1 {
			servfail := &dnswire.Message{
				Header:    dnswire.Header{ID: q.Header.ID, QR: true, Rcode: dnswire.RcodeServFail},
				Questions: q.Questions,
			}
			wire, err := servfail.Encode()
			if err != nil {
				t.Error(err)
			}
			return [][]byte{wire}
		}
		return [][]byte{positiveResponse(t, q)}
	})
	f := newForwarder(forwarderConfig{
		upstream: up.conn.LocalAddr().String(),
		timeout:  time.Second,
		deadline: 2 * time.Second,
		retries:  1,
		backoff:  5 * time.Millisecond,
		posTTL:   sim.Day,
		negTTL:   2 * sim.Hour,
		seed:     1,
	})
	m := query(t, f, 9, "burst.example.com")
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("post-SERVFAIL answer = %+v", m)
	}
	// A fresh query must hit the cache (the SERVFAIL was not cached, the
	// positive was).
	before := up.received.Load()
	m = query(t, f, 10, "burst.example.com")
	if m.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("cached answer = %+v", m)
	}
	if up.received.Load() != before {
		t.Error("cached positive leaked upstream (SERVFAIL cached instead?)")
	}
}

// TestForwarderServeStale primes the cache, lets the entry expire, kills
// the upstream, and expects the expired answer served with the stale TTL
// instead of SERVFAIL — RFC 8767 graceful degradation.
func TestForwarderServeStale(t *testing.T) {
	up := startScriptedUpstream(t, func(q *dnswire.Message, count int) [][]byte {
		return [][]byte{positiveResponse(t, q)}
	})
	f := newForwarder(forwarderConfig{
		upstream:   up.conn.LocalAddr().String(),
		timeout:    100 * time.Millisecond,
		deadline:   200 * time.Millisecond,
		posTTL:     sim.FromDuration(50 * time.Millisecond),
		negTTL:     sim.FromDuration(50 * time.Millisecond),
		serveStale: sim.Hour,
		seed:       1,
	})
	if m := query(t, f, 11, "c2.example.net"); m.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("priming answer = %+v", m)
	}
	up.conn.Close()                   // upstream goes dark
	time.Sleep(80 * time.Millisecond) // let the cache entry expire
	m := query(t, f, 12, "c2.example.net")
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("stale answer = %+v", m)
	}
	if ttl := m.Answers[0].TTL; ttl != staleAnswerTTL {
		t.Errorf("stale TTL = %d, want %d", ttl, staleAnswerTTL)
	}
	c := f.counters()
	if c.staleServed != 1 || c.servfails != 0 {
		t.Errorf("counters = %+v, want staleServed=1 servfails=0", c)
	}

	// With serve-stale disabled the same situation must SERVFAIL.
	f2 := newForwarder(forwarderConfig{
		upstream: up.conn.LocalAddr().String(),
		timeout:  100 * time.Millisecond,
		deadline: 200 * time.Millisecond,
		posTTL:   sim.Day,
		negTTL:   2 * sim.Hour,
		seed:     1,
	})
	if m := query(t, f2, 13, "gone.example.net"); m.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("without serve-stale: rcode = %d, want SERVFAIL", m.Header.Rcode)
	}
}
