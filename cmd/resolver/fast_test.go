package main

import (
	"context"
	"net"
	"testing"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/netx"
)

// startWireFast brings up a fast-path forwarder on n loopback sockets and
// returns a client dialled at the shared address.
func startWireFast(t *testing.T, f *forwarder, n int) (net.Conn, chan error) {
	t.Helper()
	conns, _, err := netx.ListenUDP(context.Background(), "127.0.0.1:0", n)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.wireServe(conns) }()
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		if err := <-done; err != nil {
			t.Errorf("wireServe: %v", err)
		}
	})
	client, err := net.Dial("udp", conns[0].LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, done
}

// exchange sends one query over the client and decodes the response.
func exchange(t *testing.T, client net.Conn, id uint16, domain string) *dnswire.Message {
	t.Helper()
	wire, err := dnswire.NewQuery(id, domain).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no response for %s: %v", domain, err)
	}
	m, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWireFastResolvesAndCaches(t *testing.T) {
	up := startFakeUpstream(t, "fast.example.com")
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	client, _ := startWireFast(t, f, 1)

	first := exchange(t, client, 11, "fast.example.com")
	if first.Header.ID != 11 || len(first.Answers) != 1 {
		t.Fatalf("first answer = %+v", first)
	}
	select {
	case got := <-up.received:
		if got != "fast.example.com" {
			t.Fatalf("upstream saw %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upstream never queried")
	}
	// Second query must be served from the worker's cache shard: the
	// upstream sees nothing further.
	second := exchange(t, client, 12, "fast.example.com")
	if second.Header.ID != 12 || len(second.Answers) != 1 || second.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("cached answer = %+v", second)
	}
	select {
	case got := <-up.received:
		t.Fatalf("cache hit leaked upstream query for %q", got)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestWireFastCanonicalisesCase pins the ASCII-lowercase decode: a
// mixed-case retransmission of a cached name must hit the shard cache.
func TestWireFastCanonicalisesCase(t *testing.T) {
	up := startFakeUpstream(t, "case.example.com")
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	client, _ := startWireFast(t, f, 1)

	if m := exchange(t, client, 21, "case.example.com"); len(m.Answers) != 1 {
		t.Fatalf("first answer = %+v", m)
	}
	<-up.received
	if m := exchange(t, client, 22, "CaSe.ExAmPlE.CoM"); len(m.Answers) != 1 {
		t.Fatalf("mixed-case answer = %+v", m)
	}
	select {
	case got := <-up.received:
		t.Fatalf("mixed-case query missed the cache (upstream saw %q)", got)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWireFastNegativeAndGarbage(t *testing.T) {
	up := startFakeUpstream(t) // nothing registered: every answer is NXDOMAIN
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	client, _ := startWireFast(t, f, 1)

	if m := exchange(t, client, 31, "unregistered.example"); m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %d, want NXDOMAIN", m.Header.Rcode)
	}
	<-up.received
	// Cached negative: no second upstream query.
	if m := exchange(t, client, 32, "unregistered.example"); m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("cached rcode = %d, want NXDOMAIN", m.Header.Rcode)
	}
	select {
	case got := <-up.received:
		t.Fatalf("negative cache miss (upstream saw %q)", got)
	case <-time.After(100 * time.Millisecond):
	}
	// Garbage and responses are dropped without an answer.
	if _, err := client.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("garbage got a %d-byte response", n)
	}
}

func TestWireFastServfailOnDeadUpstream(t *testing.T) {
	// An address nothing listens on: every attempt times out.
	dead, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	addr := dead.LocalAddr().String()
	dead.Close()
	f := newForwarder(forwarderConfig{
		upstream: addr,
		timeout:  100 * time.Millisecond,
		deadline: 300 * time.Millisecond,
		retries:  0,
		seed:     1,
	})
	client, _ := startWireFast(t, f, 1)
	if m := exchange(t, client, 41, "gone.example"); m.Header.Rcode != dnswire.RcodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", m.Header.Rcode)
	}
}

// TestWireFastMultiSocket drives the sharded shape end to end: many client
// sockets against 4 SO_REUSEPORT listeners, every query answered. Worker
// query counts merge into the forwarder at shutdown, so the test owns the
// socket lifecycle and asserts stats after wireServe returns.
func TestWireFastMultiSocket(t *testing.T) {
	up := startFakeUpstream(t, "multi.example.com")
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	conns, reuse, err := netx.ListenUDP(context.Background(), "127.0.0.1:0", 4)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.wireServe(conns) }()
	addr := conns[0].LocalAddr().String()

	const clients = 16
	for i := 0; i < clients; i++ {
		c, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		m := exchange(t, c, uint16(100+i), "multi.example.com")
		if len(m.Answers) != 1 {
			t.Fatalf("client %d answer = %+v", i, m)
		}
		c.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if err := <-done; err != nil {
		t.Fatalf("wireServe: %v", err)
	}
	q, forwarded := f.stats()
	if q < clients {
		t.Fatalf("stats queries = %d, want ≥ %d", q, clients)
	}
	// Each shard forwards its first sight of the domain at most once.
	maxMisses := len(conns)
	if !reuse {
		maxMisses = 1
	}
	if forwarded < 1 || forwarded > maxMisses {
		t.Fatalf("forwarded = %d, want 1..%d (one miss per shard at most)", forwarded, maxMisses)
	}
}
