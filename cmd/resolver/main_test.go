package main

import (
	"net"
	"testing"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
)

// fakeUpstream answers every query: registered domains resolve, everything
// else is NXDOMAIN. It counts the queries it receives.
type fakeUpstream struct {
	conn       net.PacketConn
	registered map[string]bool
	received   chan string
}

func startFakeUpstream(t *testing.T, registered ...string) *fakeUpstream {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	u := &fakeUpstream{
		conn:       conn,
		registered: make(map[string]bool),
		received:   make(chan string, 100),
	}
	for _, d := range registered {
		u.registered[d] = true
	}
	go func() {
		buf := make([]byte, 65535)
		for {
			n, addr, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := dnswire.Decode(buf[:n])
			if err != nil || len(msg.Questions) == 0 {
				continue
			}
			name := msg.Questions[0].Name
			u.received <- name
			var ip net.IP
			if u.registered[name] {
				ip = net.ParseIP("192.0.2.77")
			}
			resp, err := dnswire.NewResponse(msg, ip, 60).Encode()
			if err == nil {
				conn.WriteTo(resp, addr)
			}
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return u
}

func newTestForwarder(t *testing.T, upstream string) *forwarder {
	t.Helper()
	return newForwarder(forwarderConfig{
		upstream: upstream,
		timeout:  time.Second,
		deadline: 2 * time.Second,
		retries:  0,
		posTTL:   sim.Day,
		negTTL:   2 * sim.Hour,
		seed:     1,
	})
}

func query(t *testing.T, f *forwarder, id uint16, domain string) *dnswire.Message {
	t.Helper()
	wire, err := dnswire.NewQuery(id, domain).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp := f.handle(wire)
	if resp == nil {
		t.Fatalf("no response for %s", domain)
	}
	m, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForwarderResolvesAndCaches(t *testing.T) {
	up := startFakeUpstream(t, "c2.example.com")
	f := newTestForwarder(t, up.conn.LocalAddr().String())

	// First query: forwarded upstream, positive answer.
	m := query(t, f, 1, "c2.example.com")
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Fatalf("positive answer = %+v", m)
	}
	select {
	case name := <-up.received:
		if name != "c2.example.com" {
			t.Errorf("upstream saw %q", name)
		}
	case <-time.After(time.Second):
		t.Fatal("upstream never saw the query")
	}

	// Second query: served from cache — upstream must NOT see it.
	m = query(t, f, 2, "c2.example.com")
	if m.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("cached answer = %+v", m)
	}
	select {
	case name := <-up.received:
		t.Fatalf("cache miss leaked upstream: %q", name)
	case <-time.After(100 * time.Millisecond):
	}
	q, fwd := f.stats()
	if q != 2 || fwd != 1 {
		t.Errorf("stats = %d queries, %d forwarded; want 2, 1", q, fwd)
	}
}

func TestForwarderNegativeCaching(t *testing.T) {
	up := startFakeUpstream(t) // nothing registered
	f := newTestForwarder(t, up.conn.LocalAddr().String())

	m := query(t, f, 3, "nxd.example.org")
	if m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("want NXDOMAIN, got %+v", m.Header)
	}
	<-up.received
	// Cached negative: answered locally.
	m = query(t, f, 4, "nxd.example.org")
	if m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("cached NXDOMAIN = %+v", m.Header)
	}
	select {
	case <-up.received:
		t.Fatal("negative cache miss leaked upstream")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestForwarderServfailOnDeadUpstream(t *testing.T) {
	f := newForwarder(forwarderConfig{
		upstream: "127.0.0.1:1", // nothing listens there
		timeout:  200 * time.Millisecond,
		deadline: 400 * time.Millisecond,
		posTTL:   sim.Day,
		negTTL:   2 * sim.Hour,
		seed:     1,
	})
	m := query(t, f, 5, "any.example.com")
	if m.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("want SERVFAIL, got rcode %d", m.Header.Rcode)
	}
	if c := f.counters(); c.servfails != 1 {
		t.Errorf("servfail counter = %d, want 1", c.servfails)
	}
}

func TestForwarderIgnoresGarbage(t *testing.T) {
	f := newTestForwarder(t, "127.0.0.1:1")
	if resp := f.handle([]byte{1, 2, 3}); resp != nil {
		t.Error("garbage should be dropped")
	}
	// Responses are not relayed (loop prevention).
	r, err := dnswire.NewResponse(dnswire.NewQuery(6, "x.com"), nil, 0).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := f.handle(r); resp != nil {
		t.Error("response packets should be dropped")
	}
}

// TestFullHierarchyLoopback wires resolver → fake upstream over real UDP
// sockets and drives a client through the resolver's serve loop.
func TestFullHierarchyLoopback(t *testing.T) {
	up := startFakeUpstream(t, "rendezvous.example.com")
	f := newTestForwarder(t, up.conn.LocalAddr().String())
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.serve(conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire, err := dnswire.NewQuery(99, "rendezvous.example.com").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 99 || len(m.Answers) != 1 {
		t.Errorf("end-to-end answer = %+v", m)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}
