// The wire fast path (DESIGN.md §19): one worker goroutine per
// SO_REUSEPORT socket, each owning a private dnswire.Arena, symtab intern
// table, cache shard and encode buffer, so the steady-state cache-hit path
// — decode, canonicalise, intern, cache lookup, encode, send — performs
// zero heap allocations and takes no locks. Only the miss path (an
// upstream network exchange) touches the shared forwarder machinery.
package main

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"botmeter/internal/dnssim"
	"botmeter/internal/dnswire"
	"botmeter/internal/obs"
	"botmeter/internal/symtab"
)

// wireServe runs one fast-path worker per socket and blocks until all of
// them return. A closed socket (shutdown) is a clean exit; the first real
// error wins.
func (f *forwarder) wireServe(conns []net.PacketConn) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, c := range conns {
		w := newFastWorker(f, c)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.serve()
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// fastWorker is the single-goroutine state of one socket's pipeline. Every
// field is owned by the worker; the only shared state it touches is the
// forwarder's miss-path counters (mutex) and the nil-safe obs instruments
// (atomics).
type fastWorker struct {
	f     *forwarder
	conn  net.PacketConn
	uconn *net.UDPConn // non-nil: the alloc-free netip.AddrPort read/write path

	arena dnswire.Arena
	msg   dnswire.Message
	tab   *symtab.Table // arena name → stable ID for the cache shard
	cache *dnssim.Cache // private shard: no mutex on the hit path
	rbuf  []byte
	enc   []byte
	resp  dnswire.Message
	ans   [1]dnswire.ResourceRecord
	sink4 [4]byte

	queries int // merged into the forwarder's counters at exit
}

func newFastWorker(f *forwarder, conn net.PacketConn) *fastWorker {
	cache := dnssim.NewCache(f.cfg.posTTL, f.cfg.negTTL)
	cache.StaleTTL = f.cfg.serveStale
	if f.cfg.reg != nil {
		// Same series as the slow path's cache: the obs counters are
		// atomics shared by name, so shards aggregate into one level.
		cache.Instrument(f.cfg.reg, "level", "resolver")
	}
	w := &fastWorker{
		f:     f,
		conn:  conn,
		tab:   symtab.New(),
		cache: cache,
		rbuf:  make([]byte, 65535),
		enc:   make([]byte, 0, 512),
	}
	w.uconn, _ = conn.(*net.UDPConn)
	// Canonicalise during decode: label bytes are lowercased as they are
	// copied into the arena, so cache keys need no per-query ToLower pass.
	w.arena.LowerASCII = true
	copy(w.sink4[:], net.ParseIP("192.0.2.1").To4())
	return w
}

func (w *fastWorker) serve() error {
	defer func() {
		w.f.mu.Lock()
		w.f.queries += w.queries
		w.f.mu.Unlock()
	}()
	for {
		var (
			n    int
			ap   netip.AddrPort
			addr net.Addr
			err  error
		)
		if w.uconn != nil {
			n, ap, err = w.uconn.ReadFromUDPAddrPort(w.rbuf)
		} else {
			n, addr, err = w.conn.ReadFrom(w.rbuf)
		}
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := w.handle(w.rbuf[:n])
		if resp == nil {
			continue
		}
		if w.uconn != nil {
			_, err = w.uconn.WriteToUDPAddrPort(resp, ap)
		} else {
			_, err = w.conn.WriteTo(resp, addr)
		}
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// handle serves one datagram. Cache hits never leave the worker; misses
// reuse the forwarder's retry/validation/serve-stale machinery (the
// exchange is network-bound, so its allocations and locks are noise there).
func (w *fastWorker) handle(pkt []byte) []byte {
	if err := dnswire.DecodeInto(pkt, &w.msg, &w.arena); err != nil ||
		w.msg.Header.QR || len(w.msg.Questions) == 0 {
		return nil
	}
	w.queries++
	w.f.m.queries.Inc()
	var t0 time.Time
	if w.f.m.querySecs != nil {
		t0 = time.Now()
	}
	// The arena decoded the name already lowercased; Lookup works with the
	// arena-backed string directly, and only a first sight pays for the
	// stable copy the intern table keeps.
	name := w.msg.Questions[0].Name
	id, ok := w.tab.Lookup(name)
	if !ok {
		id = w.tab.Intern(strings.Clone(name))
	}
	now := w.f.now()
	if ans, hit := w.cache.LookupID(now, id); hit {
		w.f.observeQuery(t0)
		return w.appendAnswer(ans.NX, 60)
	}

	upstreamResp, parsed, err := w.f.forward(pkt, &w.msg, (*obs.Span)(nil))
	if err != nil {
		// Same degradation ladder as the slow path: stale beats SERVFAIL
		// while the upstream is dark (RFC 8767).
		stale, ok := w.cache.LookupStaleID(now, id)
		w.f.mu.Lock()
		if ok {
			w.f.staleServed++
		} else {
			w.f.servfails++
		}
		w.f.failStreak++
		streak := w.f.failStreak
		w.f.mu.Unlock()
		w.f.m.failStreak.Set(float64(streak))
		if ok {
			w.f.m.staleServed.Inc()
			w.f.observeQuery(t0)
			return w.appendAnswer(stale.NX, staleAnswerTTL)
		}
		w.f.m.servfails.Inc()
		w.f.observeQuery(t0)
		return w.appendServfail()
	}
	w.cache.StoreID(now, id, parsed.Header.Rcode == dnswire.RcodeNXDomain)
	w.f.mu.Lock()
	w.f.forwarded++
	w.f.failStreak = 0
	w.f.mu.Unlock()
	w.f.m.forwarded.Inc()
	w.f.m.failStreak.Set(0)
	w.f.observeQuery(t0)
	return upstreamResp
}

// appendAnswer builds the cached/stale response into the worker's reused
// encode buffer — the alloc-free twin of encodeAnswer.
func (w *fastWorker) appendAnswer(nx bool, ttl uint32) []byte {
	w.resp.Header = dnswire.Header{
		ID: w.msg.Header.ID, QR: true, RD: w.msg.Header.RD, RA: true, AA: true,
	}
	w.resp.Questions = w.msg.Questions
	w.resp.Answers = nil
	if nx {
		w.resp.Header.Rcode = dnswire.RcodeNXDomain
	} else {
		w.ans[0] = dnswire.ResourceRecord{
			Name: w.msg.Questions[0].Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: ttl, Data: w.sink4[:],
		}
		w.resp.Answers = w.ans[:]
	}
	var err error
	w.enc, err = w.resp.AppendEncode(w.enc[:0])
	if err != nil {
		return nil
	}
	return w.enc
}

// appendServfail builds the retry-exhausted response in place.
func (w *fastWorker) appendServfail() []byte {
	w.resp.Header = dnswire.Header{
		ID: w.msg.Header.ID, QR: true, RD: w.msg.Header.RD, Rcode: dnswire.RcodeServFail,
	}
	w.resp.Questions = w.msg.Questions
	w.resp.Answers = nil
	var err error
	w.enc, err = w.resp.AppendEncode(w.enc[:0])
	if err != nil {
		return nil
	}
	return w.enc
}
