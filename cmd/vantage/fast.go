// The wire fast path (DESIGN.md §19): one worker goroutine per
// SO_REUSEPORT socket. Each worker owns a dnswire.Arena, an intern table
// stabilising domain strings for the live engine, a private SafeWriter
// batch buffer over the shared O_APPEND dataset file, a source-address
// string cache and reused encode buffers — so the steady-state
// observe-and-answer path performs no heap allocations and the only
// cross-worker synchronisation is each writer's own flush mutex plus the
// engine's sharded channels. Modes that need an ordered single consumer
// (-checkpoint-dir, -crash) or the single wrapped chaos socket demote the
// daemon to the classic serve loop.
package main

import (
	"errors"
	"net"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
	"botmeter/internal/symtab"
	"botmeter/internal/trace"
)

// zoneAnswer is a pre-resolved positive answer: record type plus wire-format
// address bytes, computed once at startup so the hot path does no To4/To16.
type zoneAnswer struct {
	typ  uint16
	data []byte
}

// buildZoneAnswers precomputes the answer bytes for every registered domain.
func buildZoneAnswers(zone map[string]net.IP) map[string]zoneAnswer {
	za := make(map[string]zoneAnswer, len(zone))
	for d, ip := range zone {
		if v4 := ip.To4(); v4 != nil {
			za[d] = zoneAnswer{typ: dnswire.TypeA, data: v4}
		} else {
			za[d] = zoneAnswer{typ: dnswire.TypeAAAA, data: ip.To16()}
		}
	}
	return za
}

// wireServe runs one fast-path worker per socket and blocks until all
// return, then closes the per-worker writers (flushing their tails) and
// folds the workers' durable-record counts into the sink. A closed socket
// is a clean shutdown; the first real error wins.
func (s *sink) wireServe(conns []net.PacketConn) error {
	workers := make([]*vantageWorker, len(conns))
	for i, c := range conns {
		workers[i] = newVantageWorker(s, c)
	}
	// Register the batch writers before serving so /healthz covers every
	// worker's sticky error from the first datagram on.
	s.mu.Lock()
	for _, w := range workers {
		s.writers = append(s.writers, w.out)
	}
	s.mu.Unlock()

	errs := make([]error, len(workers)+1)
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *vantageWorker) {
			defer wg.Done()
			errs[i] = w.serve()
		}(i, w)
	}
	wg.Wait()
	var closeErrs []error
	for _, w := range workers {
		if err := w.out.Close(); err != nil {
			closeErrs = append(closeErrs, err)
		}
		s.consumed += w.consumed
	}
	errs[len(workers)] = errors.Join(closeErrs...)
	return errors.Join(errs...)
}

// vantageWorker is the single-goroutine state of one socket's pipeline.
type vantageWorker struct {
	s     *sink
	conn  net.PacketConn
	uconn *net.UDPConn // non-nil: the alloc-free netip.AddrPort read/write path

	arena   dnswire.Arena
	msg     dnswire.Message
	tab     *symtab.Table         // stabilises arena names handed to the engine
	out     *trace.SafeWriter     // private batch buffer over the shared O_APPEND file
	servers map[netip.Addr]string // source address → forwarding-server identity
	rbuf    []byte
	enc     []byte
	resp    dnswire.Message
	ans     [1]dnswire.ResourceRecord

	consumed uint64 // durable records; merged into the sink at shutdown
}

// maxServerCache bounds the per-worker source-address string cache; a border
// vantage sees a small stable set of forwarders, so eviction is a non-event.
const maxServerCache = 4096

func newVantageWorker(s *sink, conn net.PacketConn) *vantageWorker {
	w := &vantageWorker{
		s:       s,
		conn:    conn,
		tab:     symtab.New(),
		out:     trace.NewSafeWriter(s.file, s.swCfg),
		servers: make(map[netip.Addr]string),
		rbuf:    make([]byte, 65535),
		enc:     make([]byte, 0, 512),
	}
	w.uconn, _ = conn.(*net.UDPConn)
	// Canonicalise during decode: label bytes are lowercased as they are
	// copied into the arena, matching the slow path's ToLower.
	w.arena.LowerASCII = true
	return w
}

func (w *vantageWorker) serve() error {
	for {
		var (
			n      int
			ap     netip.AddrPort
			addr   net.Addr
			server string
			err    error
		)
		if w.uconn != nil {
			n, ap, err = w.uconn.ReadFromUDPAddrPort(w.rbuf)
		} else {
			n, addr, err = w.conn.ReadFrom(w.rbuf)
		}
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if w.uconn != nil {
			server = w.serverFor(ap)
		} else {
			server = hostOf(addr.String())
		}
		resp := w.handle(w.rbuf[:n], server)
		if resp == nil {
			continue
		}
		if w.uconn != nil {
			_, err = w.uconn.WriteToUDPAddrPort(resp, ap)
		} else {
			_, err = w.conn.WriteTo(resp, addr)
		}
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// serverFor resolves the forwarding server's stable identity (the host, as
// in the slow path's SplitHostPort) with a per-worker cache, so steady state
// pays one map probe instead of an Addr.String allocation per datagram.
func (w *vantageWorker) serverFor(ap netip.AddrPort) string {
	a := ap.Addr()
	if s, ok := w.servers[a]; ok {
		return s
	}
	if len(w.servers) >= maxServerCache {
		clear(w.servers)
	}
	s := a.Unmap().String()
	w.servers[a] = s
	return s
}

// hostOf strips the port from a "host:port" address string (generic-conn
// fallback; the UDPConn path uses serverFor).
func hostOf(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// handle serves one datagram: decode into the arena, record the observation
// (batched write + live engine), answer from the precomputed zone.
func (w *vantageWorker) handle(pkt []byte, server string) []byte {
	if err := dnswire.DecodeInto(pkt, &w.msg, &w.arena); err != nil ||
		w.msg.Header.QR || len(w.msg.Questions) == 0 {
		return nil
	}
	s := w.s
	s.m.queries.Inc()
	name := w.msg.Questions[0].Name // arena-backed, already lowercase
	t := sim.Time(time.Now().UnixMilli())
	domain := name
	if s.est != nil {
		// Records handed to the engine outlive this packet (sharded channel
		// queues), so the arena-backed name must be stabilised: one clone on
		// first sight, the interned string forever after.
		id, ok := w.tab.Lookup(name)
		if !ok {
			id = w.tab.Intern(strings.Clone(name))
		}
		domain = w.tab.Resolve(id)
	}
	// AppendObserved copies into the writer's buffer before returning, so an
	// arena-backed domain is safe here even without the engine's intern.
	if err := w.out.AppendObserved(t, server, domain); err != nil {
		s.recordWriteError(err)
	} else {
		s.m.observed.Inc()
		w.consumed++
	}
	if s.est != nil {
		// Backpressure from the engine's shard channels bounds queuing; the
		// only possible error is "engine closed" during shutdown.
		s.est.Observe(trace.ObservedRecord{T: t, Server: server, Domain: domain}) //nolint:errcheck
	}
	za, ok := s.zone4[name]
	if !ok {
		return w.appendResponse(0, nil)
	}
	return w.appendResponse(za.typ, za.data)
}

// appendResponse builds the answer into the worker's reused encode buffer —
// the alloc-free twin of dnswire.NewResponse + Encode (nil data = NXDOMAIN).
func (w *vantageWorker) appendResponse(typ uint16, data []byte) []byte {
	w.resp.Header = dnswire.Header{
		ID: w.msg.Header.ID, QR: true, RD: w.msg.Header.RD, RA: true, AA: true,
	}
	w.resp.Questions = w.msg.Questions
	w.resp.Answers = nil
	if data == nil {
		w.resp.Header.Rcode = dnswire.RcodeNXDomain
	} else {
		w.ans[0] = dnswire.ResourceRecord{
			Name: w.msg.Questions[0].Name, Type: typ, Class: dnswire.ClassIN,
			TTL: w.s.ttl, Data: data,
		}
		w.resp.Answers = w.ans[:]
	}
	var err error
	w.enc, err = w.resp.AppendEncode(w.enc[:0])
	if err != nil {
		return nil
	}
	return w.enc
}

// resolveListeners maps the -listeners flag to a socket count: explicit
// values win, 0 means one socket per CPU capped at 8 (beyond that the
// symtab/writer duplication costs more than the parallelism returns).
func resolveListeners(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}
