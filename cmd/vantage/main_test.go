package main

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botmeter/internal/dnswire"
	"botmeter/internal/trace"
)

type fakeAddr string

func (a fakeAddr) Network() string { return "udp" }
func (a fakeAddr) String() string  { return string(a) }

func newTestSink(t *testing.T, zoneLines string) (*sink, *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	zonePath := filepath.Join(dir, "zone.txt")
	if err := os.WriteFile(zonePath, []byte(zoneLines), 0o644); err != nil {
		t.Fatal(err)
	}
	zone, err := loadZone(zonePath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// FlushEvery=1 and no background flusher: every observation is visible
	// in buf immediately and tests stay race-free.
	out := trace.NewSafeWriter(&buf, trace.SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	t.Cleanup(func() { out.Close() })
	return &sink{zone: zone, ttl: 60, out: out}, &buf
}

func TestSinkAnswersRegistered(t *testing.T) {
	s, obs := newTestSink(t, "c2.evil.com 192.0.2.99\n")
	q := dnswire.NewQuery(1, "C2.Evil.COM")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp := s.handle(wire, fakeAddr("10.0.0.5:4242"))
	if resp == nil {
		t.Fatal("no response")
	}
	m, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Rcode != dnswire.RcodeNoError || len(m.Answers) != 1 {
		t.Errorf("response = %+v", m)
	}
	if !net.IP(m.Answers[0].Data).Equal(net.ParseIP("192.0.2.99")) {
		t.Errorf("answer IP = %v", net.IP(m.Answers[0].Data))
	}
	line := obs.String()
	if !strings.Contains(line, `"server":"10.0.0.5"`) || !strings.Contains(line, `"domain":"c2.evil.com"`) {
		t.Errorf("observation = %q", line)
	}
}

func TestSinkNXDomainForUnknown(t *testing.T) {
	s, _ := newTestSink(t, "")
	q := dnswire.NewQuery(2, "random-dga-name.net")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp := s.handle(wire, fakeAddr("10.0.0.6:1111"))
	m, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %d, want NXDOMAIN", m.Header.Rcode)
	}
}

func TestSinkIgnoresGarbageAndResponses(t *testing.T) {
	s, obs := newTestSink(t, "")
	if resp := s.handle([]byte{1, 2, 3}, fakeAddr("x")); resp != nil {
		t.Error("garbage should be dropped")
	}
	// A response message must not be echoed (loop prevention).
	r := dnswire.NewResponse(dnswire.NewQuery(3, "a.com"), nil, 0)
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := s.handle(wire, fakeAddr("x")); resp != nil {
		t.Error("responses should be dropped")
	}
	if obs.Len() != 0 {
		t.Errorf("garbage produced observations: %q", obs.String())
	}
}

func TestLoadZone(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zone.txt")
	content := "# comment\n\nplain.com\nwithip.net 198.51.100.7\nDotted.org.\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	zone, err := loadZone(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(zone) != 3 {
		t.Fatalf("zone = %v", zone)
	}
	if !zone["plain.com"].Equal(net.ParseIP("192.0.2.1")) {
		t.Error("default sinkhole IP missing")
	}
	if !zone["withip.net"].Equal(net.ParseIP("198.51.100.7")) {
		t.Error("explicit IP not parsed")
	}
	if _, ok := zone["dotted.org"]; !ok {
		t.Error("trailing dot not normalised")
	}
	if err := os.WriteFile(path, []byte("bad.com not-an-ip\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadZone(path); err == nil {
		t.Error("bad IP should fail")
	}
	if zone, err := loadZone(""); err != nil || len(zone) != 0 {
		t.Error("empty path should give empty zone")
	}
}

// brokenWriter fails every write.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("disk gone") }

// TestSinkSurvivesWriteErrors: a failing observation disk must not take the
// DNS plane down — queries keep getting answered while the errors are
// counted.
func TestSinkSurvivesWriteErrors(t *testing.T) {
	out := trace.NewSafeWriter(brokenWriter{}, trace.SafeWriterConfig{FlushInterval: -1, FlushEvery: 1})
	t.Cleanup(func() { out.Close() })
	s := &sink{zone: map[string]net.IP{"up.example": net.ParseIP("192.0.2.9")}, ttl: 60, out: out}
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(uint16(50+i), "up.example")
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		resp := s.handle(wire, fakeAddr("10.0.0.7:999"))
		if resp == nil {
			t.Fatal("DNS answer lost to a disk failure")
		}
		m, err := dnswire.Decode(resp)
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.Rcode != dnswire.RcodeNoError {
			t.Fatalf("rcode = %d under disk failure", m.Header.Rcode)
		}
	}
	// The SafeWriter's first Append buffers cleanly and fails on flush; the
	// sticky error surfaces on every subsequent Append.
	if n := s.writeErrors(); n < 4 {
		t.Errorf("writeErrors = %d, want >= 4", n)
	}
}

// TestRunRecoversTornObserved: run() must truncate a torn final line before
// appending, so a crash-interrupted capture stays strictly readable.
func TestRunRecoversTornObserved(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.jsonl")
	torn := `{"t":1,"server":"10.0.0.5","domain":"old.example"}` + "\n" + `{"t":2,"server":"10.0`
	if err := os.WriteFile(obsPath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	if removed, err := trace.TruncateTornTail(obsPath); err != nil || removed == 0 {
		t.Fatalf("recovery: %d, %v", removed, err)
	}
	data, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.ReadObservedJSONL(bytes.NewReader(data))
	if err != nil || len(obs) != 1 || obs[0].Domain != "old.example" {
		t.Errorf("recovered capture = %+v, %v", obs, err)
	}
}

// TestServeLoopback exercises the real UDP path end to end.
func TestServeLoopback(t *testing.T) {
	s, obs := newTestSink(t, "live.example.com 192.0.2.5\n")
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.serve(conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q := dnswire.NewQuery(42, "live.example.com")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 42 || len(m.Answers) != 1 {
		t.Errorf("live response = %+v", m)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Errorf("serve returned %v", err)
	}
	if !strings.Contains(obs.String(), "live.example.com") {
		t.Errorf("observation missing: %q", obs.String())
	}
}
