package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/netx"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// newFastSink builds a sink wired for the fast path: a real temp dataset
// file (per-worker writers share the fd) and a precomputed zone.
func newFastSink(t *testing.T, zoneLines string) (*sink, string) {
	t.Helper()
	dir := t.TempDir()
	zonePath := filepath.Join(dir, "zone.txt")
	if err := os.WriteFile(zonePath, []byte(zoneLines), 0o644); err != nil {
		t.Fatal(err)
	}
	zone, err := loadZone(zonePath)
	if err != nil {
		t.Fatal(err)
	}
	obsPath := filepath.Join(dir, "obs.jsonl")
	f, err := os.OpenFile(obsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	swCfg := trace.SafeWriterConfig{FlushInterval: -1, FlushEvery: 1}
	s := &sink{
		zone:  zone,
		zone4: buildZoneAnswers(zone),
		ttl:   60,
		file:  f,
		swCfg: swCfg,
		out:   trace.NewSafeWriter(f, swCfg),
	}
	t.Cleanup(func() { s.out.Close() })
	return s, obsPath
}

// startWireSink serves the fast path on n sockets and returns the address.
func startWireSink(t *testing.T, s *sink, n int) string {
	t.Helper()
	conns, _, err := netx.ListenUDP(context.Background(), "127.0.0.1:0", n)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.wireServe(conns) }()
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		if err := <-done; err != nil {
			t.Errorf("wireServe: %v", err)
		}
	})
	return conns[0].LocalAddr().String()
}

func wireExchange(t *testing.T, addr string, id uint16, domain string) *dnswire.Message {
	t.Helper()
	client, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire, err := dnswire.NewQuery(id, domain).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no response for %s: %v", domain, err)
	}
	m, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWireSinkAnswersAndRecords(t *testing.T) {
	s, obsPath := newFastSink(t, "live.example.com 192.0.2.5\n")
	addr := startWireSink(t, s, 1)

	// Registered domain: one A answer with the zone's address.
	m := wireExchange(t, addr, 7, "live.example.com")
	if m.Header.ID != 7 || len(m.Answers) != 1 || m.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("registered response = %+v", m)
	}
	if got := net.IP(m.Answers[0].Data).String(); got != "192.0.2.5" {
		t.Fatalf("answer IP = %s, want 192.0.2.5", got)
	}
	// Unknown (sinkholed DGA) domain: NXDOMAIN, still recorded. Mixed case
	// must be canonicalised by the arena's lowering.
	if m := wireExchange(t, addr, 8, "X9K2Q.NewGOZ.biz"); m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("unknown rcode = %d, want NXDOMAIN", m.Header.Rcode)
	}

	data, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadObservedJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("observed %d records, want 2: %s", len(recs), data)
	}
	if recs[0].Domain != "live.example.com" || recs[1].Domain != "x9k2q.newgoz.biz" {
		t.Fatalf("observed domains = %q, %q", recs[0].Domain, recs[1].Domain)
	}
	for i, r := range recs {
		if r.Server != "127.0.0.1" {
			t.Fatalf("record %d server = %q, want 127.0.0.1", i, r.Server)
		}
		if r.T <= 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
}

// TestWireSinkFeedsEngine pins the lifetime contract: domains handed to the
// live engine must survive arena reuse, so later packets cannot corrupt
// earlier observations queued in the engine's shards.
func TestWireSinkFeedsEngine(t *testing.T) {
	spec, err := dga.Lookup("newgoz")
	if err != nil {
		t.Fatal(err)
	}
	est, err := stream.New(stream.Config{Core: core.Config{Family: spec, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newFastSink(t, "")
	s.est = est
	addr := startWireSink(t, s, 1)

	const queries = 64
	for i := 0; i < queries; i++ {
		d := "d" + string(rune('a'+i%26)) + ".example"
		if m := wireExchange(t, addr, uint16(i+1), d); m.Header.Rcode != dnswire.RcodeNXDomain {
			t.Fatalf("query %d rcode = %d", i, m.Header.Rcode)
		}
	}
	if err := est.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if stats := est.Stats(); stats.Ingested != queries {
		t.Fatalf("engine ingested %d, want %d", stats.Ingested, queries)
	}
	if _, err := est.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWireSinkShardedWriters: concurrent workers over one O_APPEND file must
// interleave whole lines only, and every record must survive.
func TestWireSinkShardedWriters(t *testing.T) {
	s, obsPath := newFastSink(t, "")
	addr := startWireSink(t, s, 4)

	const clients, perClient = 8, 16
	for c := 0; c < clients; c++ {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < perClient; q++ {
			m := wireExchange(t, addr, uint16(c*perClient+q+1), "sharded.example")
			if m.Header.Rcode != dnswire.RcodeNXDomain {
				t.Fatalf("client %d query %d rcode = %d", c, q, m.Header.Rcode)
			}
		}
		conn.Close()
	}
	data, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadObservedJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("dataset unparseable (torn interleave?): %v", err)
	}
	if len(recs) != clients*perClient {
		t.Fatalf("observed %d records, want %d", len(recs), clients*perClient)
	}
	if err := s.health(); err != nil {
		t.Fatalf("health: %v", err)
	}
}

func TestWireSinkIgnoresGarbage(t *testing.T) {
	s, _ := newFastSink(t, "")
	addr := startWireSink(t, s, 1)
	client, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("garbage got a %d-byte response", n)
	}
	// The plane is still up afterwards.
	if m := wireExchange(t, addr, 5, "after.example"); m.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("post-garbage rcode = %d", m.Header.Rcode)
	}
}

func TestResolveListeners(t *testing.T) {
	if got := resolveListeners(3); got != 3 {
		t.Fatalf("explicit: %d, want 3", got)
	}
	if got := resolveListeners(0); got < 1 || got > 8 {
		t.Fatalf("default: %d, want 1..8", got)
	}
}
