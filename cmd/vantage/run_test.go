package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"botmeter/internal/dnswire"
)

// freeAddr reserves an ephemeral localhost port of the given network and
// returns it as host:port. The listener is closed before returning, so
// there is a tiny reuse window — fine for tests.
func freeAddr(t *testing.T, network string) string {
	t.Helper()
	switch network {
	case "udp":
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback UDP unavailable: %v", err)
		}
		defer conn.Close()
		return conn.LocalAddr().String()
	default:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback TCP unavailable: %v", err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
}

// waitHealthz polls the diagnostics endpoint until it answers.
func waitHealthz(t *testing.T, obsAddr string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + obsAddr + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return string(body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("vantage never became healthy")
	return ""
}

// queryVantage sends one DNS query over UDP and waits for the answer, so
// the observation is known to have entered the sink before returning.
func queryVantage(t *testing.T, dnsAddr, domain string, id uint16) {
	t.Helper()
	client, err := net.Dial("udp", dnsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire, err := dnswire.NewQuery(id, domain).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("no response for %s: %v", domain, err)
	}
}

// TestRunLiveCheckpointLifecycle drives the full daemon through run():
// serve real UDP DNS with live estimation and checkpointing, stop it, then
// restart over the same state and verify /healthz reports the recovery.
func TestRunLiveCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.jsonl")
	ckDir := filepath.Join(dir, "ckpt")
	logf, err := os.Create(filepath.Join(dir, "vantage.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	dnsAddr := freeAddr(t, "udp")
	obsAddr := freeAddr(t, "tcp")
	args := []string{
		"-listen", dnsAddr,
		"-observed", obsPath,
		"-flush-interval", "20ms", "-flush-every", "1",
		"-live-estimate", "newgoz", "-live-seed", "7",
		"-checkpoint-dir", ckDir, "-checkpoint-every", "3",
		"-obs-addr", obsAddr,
		// A -crash spec that never fires still arms the injector, which
		// makes checkpoint writes synchronous — deterministic for the
		// generation assertions below.
		"-crash", "records=1000000",
		"-log-level", "error",
	}
	boot := func() (context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx, args, logf) }()
		waitHealthz(t, obsAddr)
		return cancel, done
	}

	cancel, done := boot()
	for i := 0; i < 10; i++ {
		queryVantage(t, dnsAddr, fmt.Sprintf("bot-%d.example.com", i), uint16(100+i))
	}
	// 10 durable records at an every-3 cadence: at least one generation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if gens, _ := filepath.Glob(filepath.Join(ckDir, "checkpoint-*.ckpt")); len(gens) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint generation appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get("http://" + obsAddr + "/landscape")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/landscape: %v, %v", resp, err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}

	// Restart over the same observed dataset and checkpoint directory: the
	// daemon must restore the newest generation and say so on /healthz.
	cancel, done = boot()
	body := waitHealthz(t, obsAddr)
	if !strings.Contains(body, "recovered from checkpoint generation") {
		t.Errorf("recovery status missing from /healthz: %q", body)
	}
	queryVantage(t, dnsAddr, "bot-after-restart.example.com", 999)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestRunStaleCheckpointStartsFresh: a checkpoint that claims more durable
// bytes than the observed dataset holds (rotated or truncated capture) must
// be ignored rather than resumed past the end of the file.
func TestRunStaleCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.jsonl")
	ckDir := filepath.Join(dir, "ckpt")
	logf, err := os.Create(filepath.Join(dir, "vantage.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	dnsAddr := freeAddr(t, "udp")
	obsAddr := freeAddr(t, "tcp")
	args := []string{
		"-listen", dnsAddr,
		"-observed", obsPath,
		"-flush-interval", "20ms", "-flush-every", "1",
		"-live-estimate", "newgoz", "-live-seed", "7",
		"-checkpoint-dir", ckDir, "-checkpoint-every", "2",
		"-obs-addr", obsAddr,
		"-log-level", "error",
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, logf) }()
	waitHealthz(t, obsAddr)
	for i := 0; i < 6; i++ {
		queryVantage(t, dnsAddr, fmt.Sprintf("stale-%d.example.com", i), uint16(200+i))
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}

	// Simulate a rotation: the dataset restarts empty while the checkpoint
	// still references the old bytes.
	if err := os.WriteFile(obsPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithCancel(context.Background())
	go func() { done <- run(ctx, args, logf) }()
	body := waitHealthz(t, obsAddr)
	if strings.Contains(body, "recovered from checkpoint generation") {
		t.Error("stale checkpoint was restored over a truncated dataset")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestRunFlagValidation covers the fail-fast paths of run().
func TestRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"bad flag":                {"-no-such-flag"},
		"bad log level":           {"-log-level", "loud"},
		"bad log format":          {"-log-format", "yaml"},
		"bad chaos spec":          {"-chaos", "loss=oops"},
		"bad crash spec":          {"-crash", "sometimes"},
		"checkpoint without live": {"-checkpoint-dir", t.TempDir()},
		"unknown live family":     {"-live-estimate", "no-such-family"},
		"missing zone file":       {"-zone", filepath.Join(t.TempDir(), "nope.txt")},
		"unwritable observed dir": {"-observed", filepath.Join(t.TempDir(), "missing-dir", "obs.jsonl")},
		// The last two get a scratch -observed so the failing stage is the
		// listener, not a stray capture file in the working directory.
		"malformed listen address": {
			"-observed", filepath.Join(t.TempDir(), "obs.jsonl"),
			"-listen", "127.0.0.1:notaport",
		},
		"malformed diagnostic address": {
			"-observed", filepath.Join(t.TempDir(), "obs.jsonl"),
			"-live-estimate", "newgoz", "-obs-addr", "127.0.0.1:notaport",
		},
	}
	for name, args := range cases {
		if err := run(context.Background(), args, os.Stderr); err == nil {
			t.Errorf("%s: run(%v) should fail", name, args)
		}
	}
}
