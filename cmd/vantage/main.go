// Command vantage is a border-DNS vantage point: a UDP DNS server that
// local caching/forwarding DNS servers can use as their upstream. It
// answers A queries from a static registered-domain zone (everything else
// gets NXDOMAIN, as a sinkholed DGA pool would) and appends every received
// query to an observable dataset (JSON lines) that cmd/botmeter can analyse
// — the live-deployment counterpart of the simulator's Border server.
//
// The observable dataset is written crash-safely: records are flushed on an
// interval (default 1s) and every N records so a tailing consumer
// (botmeter -lenient -in obs.jsonl) sees a live capture, each underlying
// write is a whole number of JSONL lines, write errors surface immediately
// rather than at shutdown, and on startup any torn final line left by a
// previous crash is truncated away so appends resume on a clean boundary.
// The -chaos flag injects deterministic faults (loss, duplication, latency,
// SERVFAIL bursts, blackouts) for resilience testing of downstreams.
//
// Usage:
//
//	vantage -listen 127.0.0.1:5353 -zone registered.txt -observed obs.jsonl
//	# ... point local resolvers' forwarders at it, then later:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/faults"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// Metric families exported by the vantage daemon.
const (
	metricQueries     = "vantage_queries_total"
	metricObserved    = "vantage_observed_records_total"
	metricWriteErrors = "vantage_observed_write_errors_total"
	metricStickyError = "vantage_observed_sticky_error"
	metricZoneSize    = "vantage_zone_domains"
)

// sinkMetrics carries the vantage point's pre-resolved instruments; zero
// value = disabled (obs instruments are nil-safe).
type sinkMetrics struct {
	queries     *obs.Counter
	observed    *obs.Counter
	writeErrors *obs.Counter
	stickyError *obs.Gauge
}

func newSinkMetrics(reg *obs.Registry) sinkMetrics {
	reg.Help(metricQueries, "Datagrams parsed as DNS queries.")
	reg.Help(metricObserved, "Observations appended to the observable dataset.")
	reg.Help(metricWriteErrors, "Observation appends that failed to persist.")
	reg.Help(metricStickyError, "1 while the observed-dataset writer holds a sticky error (healthz degrades).")
	reg.Help(metricZoneSize, "Registered domains loaded from the zone file.")
	return sinkMetrics{
		queries:     reg.Counter(metricQueries),
		observed:    reg.Counter(metricObserved),
		writeErrors: reg.Counter(metricWriteErrors),
		stickyError: reg.Gauge(metricStickyError),
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vantage:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("vantage", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5353", "UDP address to serve DNS on")
	zonePath := fs.String("zone", "", "file of registered domains (one per line, optional 'domain ip')")
	observedPath := fs.String("observed", "observed.jsonl", "observable dataset output (JSON lines)")
	ttl := fs.Uint("ttl", 3600, "TTL for positive answers (seconds)")
	flushInterval := fs.Duration("flush-interval", time.Second, "flush buffered observations this often (negative disables)")
	flushEvery := fs.Int("flush-every", 64, "flush after this many buffered observations")
	fsyncInterval := fs.Duration("fsync-interval", 0, "fsync the observed dataset at most this often (0 disables)")
	chaosSpec := fs.String("chaos", "", "inject faults, e.g. loss=0.2,dup=0.01,servfail=0.05,delay=5ms,blackout=10s+2s")
	chaosSeed := fs.Uint64("chaos-seed", 1, "seed for deterministic fault injection")
	obsAddr := fs.String("obs-addr", "", "HTTP diagnostics address serving /metrics, /healthz, /debug/vars and /debug/pprof (empty disables)")
	liveFamily := fs.String("live-estimate", "", "maintain a live landscape for this DGA family in-process; served as JSON at /landscape on -obs-addr")
	liveSeed := fs.Uint64("live-seed", 1, "DGA seed reconstructing the -live-estimate family's pools")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "logfmt", "log encoding: logfmt or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(logw, obs.LogConfig{Level: level, Format: format, Component: "vantage"})
	rates, err := faults.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}

	// Live estimation: every observation is ALSO fed to the online
	// landscape engine, so /landscape serves the evolving chart without a
	// separate botmeter pass over the dataset.
	var est *stream.Engine
	if *liveFamily != "" {
		spec, err := dga.Lookup(*liveFamily)
		if err != nil {
			return err
		}
		est, err = stream.New(stream.Config{
			Core:     core.Config{Family: spec, Seed: *liveSeed},
			Registry: reg,
		})
		if err != nil {
			return err
		}
		logger.Info("live estimation enabled",
			"family", spec.Name, "estimator", est.EstimatorName(), "seed", *liveSeed)
	}

	zone, err := loadZone(*zonePath)
	if err != nil {
		return err
	}
	reg.Gauge(metricZoneSize).Set(float64(len(zone)))
	// Crash recovery: drop a torn final line from a previous unclean
	// shutdown so this run appends on a line boundary.
	if removed, err := trace.TruncateTornTail(*observedPath); err != nil {
		return fmt.Errorf("recovering %s: %w", *observedPath, err)
	} else if removed > 0 {
		logger.Warn("recovered torn observed dataset", "path", *observedPath, "truncated_bytes", removed)
	}
	out, err := os.OpenFile(*observedPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	var inj *faults.Injector
	if rates.Enabled() {
		inj = faults.New(*chaosSeed, rates)
		inj.Instrument(reg)
		conn = faults.WrapPacketConn(conn, inj)
		logger.Warn("chaos enabled", "rates", rates.String(), "seed", *chaosSeed)
	}
	logger.Info("serving",
		"listen", conn.LocalAddr().String(),
		"zone_domains", len(zone),
		"observed", *observedPath)

	srv := &sink{
		zone:    zone,
		ttl:     uint32(*ttl),
		started: time.Now(),
		inj:     inj,
		est:     est,
		log:     logger,
		out: trace.NewSafeWriter(out, trace.SafeWriterConfig{
			FlushInterval: *flushInterval,
			FlushEvery:    *flushEvery,
			FsyncInterval: *fsyncInterval,
		}),
	}
	if reg != nil {
		srv.m = newSinkMetrics(reg)
	}
	if *obsAddr != "" {
		muxCfg := obs.MuxConfig{Registry: reg, Health: srv.health}
		if est != nil {
			muxCfg.Landscape = est.LandscapeJSON
		}
		diag, err := obs.StartHTTP(*obsAddr, obs.NewMux(muxCfg))
		if err != nil {
			return err
		}
		defer diag.Close()
		logger.Info("diagnostics listening", "obs_addr", diag.Addr())
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	select {
	case <-ctx.Done():
		conn.Close()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			srv.out.Close()
			return err
		}
	}
	if inj != nil {
		logger.Info("chaos counters", "counters", inj.Counters().String())
	}
	if est != nil {
		// The serve loop has returned, so no Observe is in flight.
		land, err := est.Close()
		if err != nil {
			logger.Error("closing live estimation", "err", err)
		} else {
			stats := est.Stats()
			logger.Info("final live landscape",
				"servers", len(land.Servers), "total", fmt.Sprintf("%.1f", land.Total),
				"matched", stats.Matched, "late_dropped", stats.DroppedLate)
		}
	}
	return srv.out.Close()
}

// sink answers queries and records observations.
type sink struct {
	zone    map[string]net.IP
	ttl     uint32
	started time.Time
	out     *trace.SafeWriter
	inj     *faults.Injector
	est     *stream.Engine
	log     *obs.Logger
	m       sinkMetrics

	mu        sync.Mutex
	writeErrs int
}

// health implements the /healthz probe: unhealthy while the observed-
// dataset writer holds a sticky error — the DNS plane still answers, but
// the vantage point is no longer recording, which is this daemon's job.
func (s *sink) health() error {
	if err := s.out.Err(); err != nil {
		return fmt.Errorf("observed dataset writer: %w", err)
	}
	return nil
}

func (s *sink) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if strings.Contains(err.Error(), "use of closed") {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n], addr)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle parses one datagram, records the observation and builds the
// response (nil for unparseable input).
func (s *sink) handle(pkt []byte, from net.Addr) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := strings.ToLower(msg.Questions[0].Name)
	s.m.queries.Inc()

	// Application-level chaos: a SERVFAIL burst means the query was
	// received but resolution failed — nothing is recorded, mirroring a
	// border server whose recursion is broken.
	if s.inj != nil && s.inj.ServFail() {
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: msg.Header.ID, QR: true, RD: msg.Header.RD, Rcode: dnswire.RcodeServFail},
			Questions: msg.Questions,
		}
		wire, err := servfail.Encode()
		if err != nil {
			return nil
		}
		return wire
	}

	// The forwarding server's identity is its source address (ports vary
	// per query; the host is the stable identity).
	server := from.String()
	if host, _, err := net.SplitHostPort(server); err == nil {
		server = host
	}
	rec := trace.ObservedRecord{
		T:      sim.Time(time.Now().UnixMilli()),
		Server: server,
		Domain: domain,
	}
	if err := s.out.Append(rec); err != nil {
		// A failing disk must not take the DNS plane down, but it must be
		// loud: log the first few occurrences, keep counting, and flip the
		// sticky-error gauge so /metrics and /healthz surface the outage
		// instead of it only appearing at process exit.
		s.mu.Lock()
		s.writeErrs++
		n := s.writeErrs
		s.mu.Unlock()
		s.m.writeErrors.Inc()
		s.m.stickyError.Set(1)
		if n <= 3 {
			s.log.Error("observation write error", "count", n, "err", err)
		}
	} else {
		s.m.observed.Inc()
	}
	if s.est != nil {
		// Backpressure from the engine's shard channels bounds queuing;
		// the only possible error is "engine closed" during shutdown.
		s.est.Observe(rec) //nolint:errcheck
	}

	ip := s.zone[domain]
	resp := dnswire.NewResponse(msg, ip, s.ttl)
	wire, err := resp.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// writeErrors reports how many observations failed to persist.
func (s *sink) writeErrors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErrs
}

// loadZone reads "domain [ip]" lines; a missing IP defaults to 192.0.2.1
// (TEST-NET-1), the convention for sinkholes.
func loadZone(path string) (map[string]net.IP, error) {
	zone := make(map[string]net.IP)
	if path == "" {
		return zone, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ip := net.ParseIP("192.0.2.1")
		if len(fields) > 1 {
			if ip = net.ParseIP(fields[1]); ip == nil {
				return nil, fmt.Errorf("zone %s:%d: bad IP %q", path, lineNo, fields[1])
			}
		}
		zone[strings.ToLower(strings.TrimSuffix(fields[0], "."))] = ip
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return zone, nil
}
