// Command vantage is a border-DNS vantage point: a UDP DNS server that
// local caching/forwarding DNS servers can use as their upstream. It
// answers A queries from a static registered-domain zone (everything else
// gets NXDOMAIN, as a sinkholed DGA pool would) and appends every received
// query to an observable dataset (JSON lines) that cmd/botmeter can analyse
// — the live-deployment counterpart of the simulator's Border server.
//
// The observable dataset is written crash-safely: records are flushed on an
// interval (default 1s) and every N records so a tailing consumer
// (botmeter -lenient -in obs.jsonl) sees a live capture, each underlying
// write is a whole number of JSONL lines, write errors surface immediately
// rather than at shutdown, and on startup any torn final line left by a
// previous crash is truncated away so appends resume on a clean boundary.
// The -chaos flag injects deterministic faults (loss, duplication, latency,
// SERVFAIL bursts, blackouts) for resilience testing of downstreams.
//
// Usage:
//
//	vantage -listen 127.0.0.1:5353 -zone registered.txt -observed obs.jsonl
//	# ... point local resolvers' forwarders at it, then later:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/faults"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vantage:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("vantage", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5353", "UDP address to serve DNS on")
	zonePath := fs.String("zone", "", "file of registered domains (one per line, optional 'domain ip')")
	observedPath := fs.String("observed", "observed.jsonl", "observable dataset output (JSON lines)")
	ttl := fs.Uint("ttl", 3600, "TTL for positive answers (seconds)")
	flushInterval := fs.Duration("flush-interval", time.Second, "flush buffered observations this often (negative disables)")
	flushEvery := fs.Int("flush-every", 64, "flush after this many buffered observations")
	fsyncInterval := fs.Duration("fsync-interval", 0, "fsync the observed dataset at most this often (0 disables)")
	chaosSpec := fs.String("chaos", "", "inject faults, e.g. loss=0.2,dup=0.01,servfail=0.05,delay=5ms,blackout=10s+2s")
	chaosSeed := fs.Uint64("chaos-seed", 1, "seed for deterministic fault injection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rates, err := faults.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}

	zone, err := loadZone(*zonePath)
	if err != nil {
		return err
	}
	// Crash recovery: drop a torn final line from a previous unclean
	// shutdown so this run appends on a line boundary.
	if removed, err := trace.TruncateTornTail(*observedPath); err != nil {
		return fmt.Errorf("recovering %s: %w", *observedPath, err)
	} else if removed > 0 {
		fmt.Fprintf(logw, "vantage: recovered %s: truncated %d-byte torn final line\n", *observedPath, removed)
	}
	out, err := os.OpenFile(*observedPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	var inj *faults.Injector
	if rates.Enabled() {
		inj = faults.New(*chaosSeed, rates)
		conn = faults.WrapPacketConn(conn, inj)
		fmt.Fprintf(logw, "vantage: CHAOS enabled: %s (seed %d)\n", rates, *chaosSeed)
	}
	fmt.Fprintf(logw, "vantage: serving DNS on %s (%d registered domains), observing to %s\n",
		conn.LocalAddr(), len(zone), *observedPath)

	srv := &sink{
		zone:    zone,
		ttl:     uint32(*ttl),
		started: time.Now(),
		inj:     inj,
		logw:    logw,
		out: trace.NewSafeWriter(out, trace.SafeWriterConfig{
			FlushInterval: *flushInterval,
			FlushEvery:    *flushEvery,
			FsyncInterval: *fsyncInterval,
		}),
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	select {
	case <-ctx.Done():
		conn.Close()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			srv.out.Close()
			return err
		}
	}
	if inj != nil {
		fmt.Fprintf(logw, "vantage: chaos %s\n", inj.Counters())
	}
	return srv.out.Close()
}

// sink answers queries and records observations.
type sink struct {
	zone    map[string]net.IP
	ttl     uint32
	started time.Time
	out     *trace.SafeWriter
	inj     *faults.Injector
	logw    *os.File

	mu        sync.Mutex
	writeErrs int
}

func (s *sink) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if strings.Contains(err.Error(), "use of closed") {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n], addr)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle parses one datagram, records the observation and builds the
// response (nil for unparseable input).
func (s *sink) handle(pkt []byte, from net.Addr) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := strings.ToLower(msg.Questions[0].Name)

	// Application-level chaos: a SERVFAIL burst means the query was
	// received but resolution failed — nothing is recorded, mirroring a
	// border server whose recursion is broken.
	if s.inj != nil && s.inj.ServFail() {
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: msg.Header.ID, QR: true, RD: msg.Header.RD, Rcode: dnswire.RcodeServFail},
			Questions: msg.Questions,
		}
		wire, err := servfail.Encode()
		if err != nil {
			return nil
		}
		return wire
	}

	// The forwarding server's identity is its source address (ports vary
	// per query; the host is the stable identity).
	server := from.String()
	if host, _, err := net.SplitHostPort(server); err == nil {
		server = host
	}
	rec := trace.ObservedRecord{
		T:      sim.Time(time.Now().UnixMilli()),
		Server: server,
		Domain: domain,
	}
	if err := s.out.Append(rec); err != nil {
		// A failing disk must not take the DNS plane down, but it must be
		// loud: log the first few occurrences and keep counting.
		s.mu.Lock()
		s.writeErrs++
		n := s.writeErrs
		s.mu.Unlock()
		if n <= 3 && s.logw != nil {
			fmt.Fprintf(s.logw, "vantage: observation write error (%d so far): %v\n", n, err)
		}
	}

	ip := s.zone[domain]
	resp := dnswire.NewResponse(msg, ip, s.ttl)
	wire, err := resp.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// writeErrors reports how many observations failed to persist.
func (s *sink) writeErrors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErrs
}

// loadZone reads "domain [ip]" lines; a missing IP defaults to 192.0.2.1
// (TEST-NET-1), the convention for sinkholes.
func loadZone(path string) (map[string]net.IP, error) {
	zone := make(map[string]net.IP)
	if path == "" {
		return zone, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ip := net.ParseIP("192.0.2.1")
		if len(fields) > 1 {
			if ip = net.ParseIP(fields[1]); ip == nil {
				return nil, fmt.Errorf("zone %s:%d: bad IP %q", path, lineNo, fields[1])
			}
		}
		zone[strings.ToLower(strings.TrimSuffix(fields[0], "."))] = ip
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return zone, nil
}
