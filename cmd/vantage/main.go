// Command vantage is a border-DNS vantage point: a UDP DNS server that
// local caching/forwarding DNS servers can use as their upstream. It
// answers A queries from a static registered-domain zone (everything else
// gets NXDOMAIN, as a sinkholed DGA pool would) and appends every received
// query to an observable dataset (JSON lines) that cmd/botmeter can analyse
// — the live-deployment counterpart of the simulator's Border server.
//
// Usage:
//
//	vantage -listen 127.0.0.1:5353 -zone registered.txt -observed obs.jsonl
//	# ... point local resolvers' forwarders at it, then later:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vantage:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("vantage", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5353", "UDP address to serve DNS on")
	zonePath := fs.String("zone", "", "file of registered domains (one per line, optional 'domain ip')")
	observedPath := fs.String("observed", "observed.jsonl", "observable dataset output (JSON lines)")
	ttl := fs.Uint("ttl", 3600, "TTL for positive answers (seconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	zone, err := loadZone(*zonePath)
	if err != nil {
		return err
	}
	out, err := os.OpenFile(*observedPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(logw, "vantage: serving DNS on %s (%d registered domains), observing to %s\n",
		conn.LocalAddr(), len(zone), *observedPath)

	srv := &sink{
		zone:    zone,
		ttl:     uint32(*ttl),
		started: time.Now(),
		enc:     bufio.NewWriter(out),
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	select {
	case <-ctx.Done():
		conn.Close()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			return err
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.enc.Flush()
}

// sink answers queries and records observations.
type sink struct {
	zone    map[string]net.IP
	ttl     uint32
	started time.Time

	mu  sync.Mutex
	enc *bufio.Writer
}

func (s *sink) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if strings.Contains(err.Error(), "use of closed") {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n], addr)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle parses one datagram, records the observation and builds the
// response (nil for unparseable input).
func (s *sink) handle(pkt []byte, from net.Addr) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := strings.ToLower(msg.Questions[0].Name)

	// The forwarding server's identity is its source address (ports vary
	// per query; the host is the stable identity).
	server := from.String()
	if host, _, err := net.SplitHostPort(server); err == nil {
		server = host
	}
	rec := trace.ObservedRecord{
		T:      sim.Time(time.Now().UnixMilli()),
		Server: server,
		Domain: domain,
	}
	s.mu.Lock()
	writeJSONL(s.enc, rec)
	s.mu.Unlock()

	ip := s.zone[domain]
	resp := dnswire.NewResponse(msg, ip, s.ttl)
	wire, err := resp.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// writeJSONL appends one record; errors surface at final Flush.
func writeJSONL(w *bufio.Writer, rec trace.ObservedRecord) {
	fmt.Fprintf(w, `{"t":%d,"server":%q,"domain":%q}`+"\n", int64(rec.T), rec.Server, rec.Domain)
}

// loadZone reads "domain [ip]" lines; a missing IP defaults to 192.0.2.1
// (TEST-NET-1), the convention for sinkholes.
func loadZone(path string) (map[string]net.IP, error) {
	zone := make(map[string]net.IP)
	if path == "" {
		return zone, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ip := net.ParseIP("192.0.2.1")
		if len(fields) > 1 {
			if ip = net.ParseIP(fields[1]); ip == nil {
				return nil, fmt.Errorf("zone %s:%d: bad IP %q", path, lineNo, fields[1])
			}
		}
		zone[strings.ToLower(strings.TrimSuffix(fields[0], "."))] = ip
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return zone, nil
}
