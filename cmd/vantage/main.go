// Command vantage is a border-DNS vantage point: a UDP DNS server that
// local caching/forwarding DNS servers can use as their upstream. It
// answers A queries from a static registered-domain zone (everything else
// gets NXDOMAIN, as a sinkholed DGA pool would) and appends every received
// query to an observable dataset (JSON lines) that cmd/botmeter can analyse
// — the live-deployment counterpart of the simulator's Border server.
//
// The observable dataset is written crash-safely: records are flushed on an
// interval (default 1s) and every N records so a tailing consumer
// (botmeter -lenient -in obs.jsonl) sees a live capture, each underlying
// write is a whole number of JSONL lines, write errors surface immediately
// rather than at shutdown, and on startup any torn final line left by a
// previous crash is truncated away so appends resume on a clean boundary.
// The -chaos flag injects deterministic faults (loss, duplication, latency,
// SERVFAIL bursts, blackouts) for resilience testing of downstreams.
//
// Usage:
//
//	vantage -listen 127.0.0.1:5353 -zone registered.txt -observed obs.jsonl
//	# ... point local resolvers' forwarders at it, then later:
//	botmeter -family newgoz -in obs.jsonl -format jsonl
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/faults"
	"botmeter/internal/netx"
	"botmeter/internal/obs"
	"botmeter/internal/obs/series"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// Metric families exported by the vantage daemon.
const (
	metricQueries     = "vantage_queries_total"
	metricObserved    = "vantage_observed_records_total"
	metricWriteErrors = "vantage_observed_write_errors_total"
	metricStickyError = "vantage_observed_sticky_error"
	metricZoneSize    = "vantage_zone_domains"
)

// sinkMetrics carries the vantage point's pre-resolved instruments; zero
// value = disabled (obs instruments are nil-safe).
type sinkMetrics struct {
	queries     *obs.Counter
	observed    *obs.Counter
	writeErrors *obs.Counter
	stickyError *obs.Gauge
}

func newSinkMetrics(reg *obs.Registry) sinkMetrics {
	reg.Help(metricQueries, "Datagrams parsed as DNS queries.")
	reg.Help(metricObserved, "Observations appended to the observable dataset.")
	reg.Help(metricWriteErrors, "Observation appends that failed to persist.")
	reg.Help(metricStickyError, "1 while the observed-dataset writer holds a sticky error (healthz degrades).")
	reg.Help(metricZoneSize, "Registered domains loaded from the zone file.")
	return sinkMetrics{
		queries:     reg.Counter(metricQueries),
		observed:    reg.Counter(metricObserved),
		writeErrors: reg.Counter(metricWriteErrors),
		stickyError: reg.Gauge(metricStickyError),
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vantage:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("vantage", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:5353", "UDP address to serve DNS on")
	zonePath := fs.String("zone", "", "file of registered domains (one per line, optional 'domain ip')")
	observedPath := fs.String("observed", "observed.jsonl", "observable dataset output (JSON lines)")
	ttl := fs.Uint("ttl", 3600, "TTL for positive answers (seconds)")
	flushInterval := fs.Duration("flush-interval", time.Second, "flush buffered observations this often (negative disables)")
	flushEvery := fs.Int("flush-every", 64, "flush after this many buffered observations")
	fsyncInterval := fs.Duration("fsync-interval", 0, "fsync the observed dataset at most this often (0 disables)")
	chaosSpec := fs.String("chaos", "", "inject faults, e.g. loss=0.2,dup=0.01,servfail=0.05,delay=5ms,blackout=10s+2s")
	chaosSeed := fs.Uint64("chaos-seed", 1, "seed for deterministic fault injection")
	obsAddr := fs.String("obs-addr", "", "HTTP diagnostics address serving /metrics, /healthz, /debug/vars and /debug/pprof (empty disables)")
	liveFamily := fs.String("live-estimate", "", "maintain a live landscape for this DGA family in-process; served as JSON at /landscape on -obs-addr")
	liveSeed := fs.Uint64("live-seed", 1, "DGA seed reconstructing the -live-estimate family's pools")
	vantageID := fs.String("vantage-id", "", "with -live-estimate: name this vantage point; exported state carries the identity so a landscape-server can federate it via /state")
	checkpointDir := fs.String("checkpoint-dir", "", "with -live-estimate: checkpoint the engine state here and recover it (checkpoint restore + replay of the observed dataset) on startup")
	checkpointInterval := fs.Duration("checkpoint-interval", 30*time.Second, "with -checkpoint-dir: wall-clock checkpoint cadence (0 disables the time trigger)")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "with -checkpoint-dir: also checkpoint every N observed records (0 disables the count trigger)")
	crashSpec := fs.String("crash", "", "deterministic crash injection for recovery testing, e.g. records=500 or point=checkpoint-write:1")
	sloFreshness := fs.Duration("slo-freshness", 0, "with -live-estimate: degrade /healthz when any shard's watermark lags the wall clock by more than this (0 disables)")
	sloLoss := fs.Float64("slo-loss", 0, "with -live-estimate: degrade /healthz when the lossy-ingest ratio (late drops + reorder evictions over ingested) exceeds this (0 disables)")
	sloDisagree := fs.Float64("slo-disagreement", 0, "with -live-estimate: degrade /healthz when the estimators' relative spread exceeds this (0 disables)")
	historyInterval := fs.Duration("history-interval", 10*time.Second, "with -live-estimate: landscape history sampling cadence")
	historyPoints := fs.Int("history-points", 512, "with -live-estimate: points kept per series and in /landscape/history")
	historyStep := fs.Duration("history-step", time.Second, "with -live-estimate: time-series downsampling step for /debug/series")
	wireFast := fs.Bool("wire-fast", true, "serve with the zero-copy arena decoder and per-socket pipelines (demoted to the classic loop when -chaos, -checkpoint-dir or -crash is set)")
	listeners := fs.Int("listeners", 0, "fast-path SO_REUSEPORT listener sockets (0 = one per CPU, capped at 8; ignored on the classic loop)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "logfmt", "log encoding: logfmt or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(logw, obs.LogConfig{Level: level, Format: format, Component: "vantage"})
	rates, err := faults.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}
	crasher, err := parseCrash(*crashSpec)
	if err != nil {
		return err
	}
	if *checkpointDir != "" && *liveFamily == "" {
		return fmt.Errorf("-checkpoint-dir needs -live-estimate (there is no engine state to checkpoint)")
	}
	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}

	zone, err := loadZone(*zonePath)
	if err != nil {
		return err
	}
	reg.Gauge(metricZoneSize).Set(float64(len(zone)))
	// Crash recovery, part 1: drop a torn final line from a previous
	// unclean shutdown so this run appends on a line boundary — and so the
	// checkpoint replay below reads only whole records.
	if removed, err := trace.TruncateTornTail(*observedPath); err != nil {
		return fmt.Errorf("recovering %s: %w", *observedPath, err)
	} else if removed > 0 {
		logger.Warn("recovered torn observed dataset", "path", *observedPath, "truncated_bytes", removed)
	}

	// Live estimation: every observation is ALSO fed to the online
	// landscape engine, so /landscape serves the evolving chart without a
	// separate botmeter pass over the dataset. With -checkpoint-dir, the
	// engine state survives crashes: recovery restores the newest good
	// checkpoint (falling back past torn/corrupt generations), replays the
	// observed dataset from the checkpoint's record offset — exactly-once:
	// each record's effect is applied either by the restored state or by
	// the replay, never both — and quiesces the reorder buffers so
	// /landscape immediately reflects everything durable.
	var est *stream.Engine
	var consumed uint64 // well-formed records durably in the observed dataset
	var recovery string
	if *liveFamily != "" {
		spec, err := dga.Lookup(*liveFamily)
		if err != nil {
			return err
		}
		streamCfg := stream.Config{
			Core:     core.Config{Family: spec, Seed: *liveSeed},
			Vantage:  *vantageID,
			Registry: reg,
		}
		var skip uint64
		if *checkpointDir != "" {
			state, info, err := stream.LoadCheckpoint(*checkpointDir)
			if err != nil {
				return err
			}
			if info.Found {
				stale := false
				if state.Source.Bytes > 0 {
					fi, statErr := os.Stat(*observedPath)
					stale = statErr != nil || fi.Size() < state.Source.Bytes
				}
				if stale {
					logger.Warn("checkpoint is newer than the observed dataset (rotated or truncated?); starting fresh",
						"generation", info.Gen)
				} else {
					est, err = stream.Restore(streamCfg, state)
					if err != nil {
						return err
					}
					skip = state.Source.Records
					recovery = info.String()
					logger.Info("restored checkpoint",
						"generation", info.Gen, "records", skip, "corrupt_skipped", info.CorruptSkipped)
				}
			}
		}
		if est == nil {
			est, err = stream.New(streamCfg)
			if err != nil {
				return err
			}
		}
		if *checkpointDir != "" {
			consumed, err = replayObserved(est, *observedPath, skip)
			if err != nil {
				return fmt.Errorf("replaying %s: %w", *observedPath, err)
			}
			if err := est.Quiesce(); err != nil {
				return err
			}
			if consumed > skip {
				logger.Info("replayed observed dataset", "records", consumed-skip, "resumed_at", skip)
			}
		}
		logger.Info("live estimation enabled",
			"family", spec.Name, "estimator", est.EstimatorName(), "seed", *liveSeed)
	}

	out, err := os.OpenFile(*observedPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()

	// The fast path's per-socket workers append and count durable records
	// concurrently, which is incompatible with the modes that need one
	// ordered consumer: the checkpoint cut (-checkpoint-dir) and crash
	// injection (-crash) key exactly-once semantics to a single serve
	// goroutine's record sequence, and chaos wraps one PacketConn around a
	// deterministic RNG. Those modes demote to the classic loop.
	useFast := *wireFast
	demote := ""
	switch {
	case rates.Enabled():
		demote = "-chaos"
	case *checkpointDir != "":
		demote = "-checkpoint-dir"
	case crasher != nil:
		demote = "-crash"
	}
	if useFast && demote != "" {
		useFast = false
		logger.Info("wire fast path demoted to classic loop", "reason", demote)
	}

	var conns []net.PacketConn
	var reuseport bool
	var inj *faults.Injector
	if useFast {
		conns, reuseport, err = netx.ListenUDP(ctx, *listen, resolveListeners(*listeners))
		if err != nil {
			return err
		}
	} else {
		conn, err := net.ListenPacket("udp", *listen)
		if err != nil {
			return err
		}
		if rates.Enabled() {
			inj = faults.New(*chaosSeed, rates)
			inj.Instrument(reg)
			conn = faults.WrapPacketConn(conn, inj)
			logger.Warn("chaos enabled", "rates", rates.String(), "seed", *chaosSeed)
		}
		conns = []net.PacketConn{conn}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if useFast {
		logger.Info("serving (wire fast path)",
			"listen", conns[0].LocalAddr().String(),
			"listeners", len(conns),
			"reuseport", reuseport,
			"zone_domains", len(zone),
			"observed", *observedPath)
	} else {
		logger.Info("serving",
			"listen", conns[0].LocalAddr().String(),
			"zone_domains", len(zone),
			"observed", *observedPath)
	}

	swCfg := trace.SafeWriterConfig{
		FlushInterval: *flushInterval,
		FlushEvery:    *flushEvery,
		FsyncInterval: *fsyncInterval,
	}
	srv := &sink{
		zone:     zone,
		zone4:    buildZoneAnswers(zone),
		ttl:      uint32(*ttl),
		started:  time.Now(),
		inj:      inj,
		est:      est,
		crash:    crasher,
		consumed: consumed,
		log:      logger,
		file:     out,
		swCfg:    swCfg,
		out:      trace.NewSafeWriter(out, swCfg),
	}
	if reg != nil {
		srv.m = newSinkMetrics(reg)
	}
	if *checkpointDir != "" {
		srv.ck, err = stream.NewCheckpointer(stream.CheckpointConfig{
			Dir:          *checkpointDir,
			Interval:     *checkpointInterval,
			EveryRecords: *checkpointEvery,
			Registry:     reg,
			Crash:        crasher,
			// Flush the observed-dataset writer before the state export, so
			// the durable file prefix covers the cut and a later replay
			// finds every record the checkpoint claims to have consumed. A
			// sticky write error blocks checkpointing: a checkpoint ahead
			// of the durable file would double-apply records on resume.
			PreSync: func() error {
				if err := srv.out.Flush(); err != nil {
					return err
				}
				return srv.out.Err()
			},
			SourceMeta: func() (string, int64) {
				fi, statErr := os.Stat(*observedPath)
				if statErr != nil {
					return *observedPath, 0
				}
				return *observedPath, fi.Size()
			},
		})
		if err != nil {
			return err
		}
		logger.Info("checkpointing enabled",
			"dir", *checkpointDir, "interval", checkpointInterval.String(), "every_records", *checkpointEvery)
	}
	// The Landscape Observatory samples the live engine into a bounded
	// time-series store, keeps the /landscape/history ring and evaluates the
	// SLO rules that degrade /healthz (DESIGN.md §16).
	var obsy *stream.Observatory
	if est != nil {
		obsy, err = stream.NewObservatory(stream.ObservatoryConfig{
			Engine:          est,
			Checkpoints:     srv.ck,
			Store:           series.NewStore(series.Config{Capacity: *historyPoints, Step: *historyStep}),
			Registry:        reg,
			Logger:          logger,
			HistoryInterval: *historyInterval,
			HistoryPoints:   *historyPoints,
			FreshnessSLO:    *sloFreshness,
			LossRateSLO:     *sloLoss,
			DisagreementSLO: *sloDisagree,
		})
		if err != nil {
			return err
		}
		obsy.Start()
		defer obsy.Stop()
		if obsy.Rules().Len() > 0 {
			logger.Info("slo rules armed",
				"freshness", sloFreshness.String(), "loss", *sloLoss, "disagreement", *sloDisagree)
		}
	}
	if *obsAddr != "" {
		muxCfg := obs.MuxConfig{Registry: reg, Health: srv.health}
		if est != nil {
			muxCfg.Landscape = est.LandscapeJSON
			// /state serves the exported sufficient statistics as a
			// checkpoint frame, the pull side of federation: a
			// landscape-server fetches this from every vantage and merges.
			muxCfg.State = func() ([]byte, error) {
				st, err := est.ExportState()
				if err != nil {
					return nil, err
				}
				return stream.EncodeCheckpoint(st)
			}
		}
		if obsy != nil {
			muxCfg.Series = obsy.Store()
			muxCfg.History = obsy.HistoryJSON
			// /healthz degrades on a sticky writer error OR a firing SLO rule.
			muxCfg.Health = func() error {
				if err := srv.health(); err != nil {
					return err
				}
				return obsy.Health()
			}
		}
		muxCfg.Status = func() string {
			var lines []string
			if recovery != "" {
				lines = append(lines, recovery)
			}
			if srv.ck != nil {
				st := srv.ck.Stats()
				if st.Written > 0 {
					lines = append(lines, fmt.Sprintf("checkpoint generation %d at record %d (%d written, %d skipped, %d errors)",
						st.Gen, st.LastRecords, st.Written, st.Skipped, st.Errors))
				}
			}
			return strings.Join(lines, "\n")
		}
		diag, err := obs.StartHTTP(*obsAddr, obs.NewMux(muxCfg))
		if err != nil {
			return err
		}
		defer diag.Close()
		logger.Info("diagnostics listening", "obs_addr", diag.Addr())
	}
	done := make(chan error, 1)
	if useFast {
		go func() { done <- srv.wireServe(conns) }()
	} else {
		go func() { done <- srv.serve(conns[0]) }()
	}
	select {
	case <-ctx.Done():
		for _, c := range conns {
			c.Close()
		}
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			srv.out.Close()
			return err
		}
	}
	if inj != nil {
		logger.Info("chaos counters", "counters", inj.Counters().String())
	}
	if srv.ck != nil {
		// Final checkpoint at the clean-shutdown cut, so the next start
		// restores instead of replaying the whole dataset. Must precede
		// est.Close(): a closed engine cannot export.
		if err := srv.ck.Checkpoint(est, srv.consumed); err != nil {
			logger.Error("final checkpoint failed", "err", err)
		}
	}
	if est != nil {
		// The serve loop has returned, so no Observe is in flight.
		land, err := est.Close()
		if err != nil {
			logger.Error("closing live estimation", "err", err)
		} else {
			stats := est.Stats()
			logger.Info("final live landscape",
				"servers", len(land.Servers), "total", fmt.Sprintf("%.1f", land.Total),
				"matched", stats.Matched, "late_dropped", stats.DroppedLate)
		}
	}
	return srv.out.Close()
}

// sink answers queries and records observations.
type sink struct {
	zone    map[string]net.IP
	zone4   map[string]zoneAnswer // precomputed wire answers (fast path)
	ttl     uint32
	started time.Time
	out     *trace.SafeWriter
	file    *os.File               // the O_APPEND dataset file behind out
	swCfg   trace.SafeWriterConfig // config for per-worker fast-path writers
	inj     *faults.Injector
	est     *stream.Engine
	ck      *stream.Checkpointer
	crash   *faults.Crasher
	log     *obs.Logger
	m       sinkMetrics

	// consumed counts well-formed records durably appended to the observed
	// dataset (seeded with the records found at startup). It is the source
	// position checkpoints cut at — only touched by the serve goroutine (the
	// fast path folds its per-worker counts in after the workers exit).
	consumed uint64

	mu        sync.Mutex
	writers   []*trace.SafeWriter // fast-path per-worker writers, for health
	writeErrs int
	ckErrs    int
}

// health implements the /healthz probe: unhealthy while any observed-
// dataset writer holds a sticky error — the DNS plane still answers, but
// the vantage point is no longer recording, which is this daemon's job.
func (s *sink) health() error {
	if err := s.out.Err(); err != nil {
		return fmt.Errorf("observed dataset writer: %w", err)
	}
	s.mu.Lock()
	writers := s.writers
	s.mu.Unlock()
	for i, w := range writers {
		if err := w.Err(); err != nil {
			return fmt.Errorf("observed dataset writer %d: %w", i, err)
		}
	}
	return nil
}

// recordWriteError accounts one failed observation append: a failing disk
// must not take the DNS plane down, but it must be loud — log the first few
// occurrences, keep counting, and flip the sticky-error gauge so /metrics
// and /healthz surface the outage instead of it only appearing at exit.
func (s *sink) recordWriteError(err error) {
	s.mu.Lock()
	s.writeErrs++
	n := s.writeErrs
	s.mu.Unlock()
	s.m.writeErrors.Inc()
	s.m.stickyError.Set(1)
	if n <= 3 {
		s.log.Error("observation write error", "count", n, "err", err)
	}
}

func (s *sink) serve(conn net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n], addr)
		if resp != nil {
			if _, err := conn.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}

// handle parses one datagram, records the observation and builds the
// response (nil for unparseable input).
func (s *sink) handle(pkt []byte, from net.Addr) []byte {
	msg, err := dnswire.Decode(pkt)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return nil
	}
	domain := dnswire.CanonicalLower(msg.Questions[0].Name)
	s.m.queries.Inc()

	// Application-level chaos: a SERVFAIL burst means the query was
	// received but resolution failed — nothing is recorded, mirroring a
	// border server whose recursion is broken.
	if s.inj != nil && s.inj.ServFail() {
		servfail := &dnswire.Message{
			Header:    dnswire.Header{ID: msg.Header.ID, QR: true, RD: msg.Header.RD, Rcode: dnswire.RcodeServFail},
			Questions: msg.Questions,
		}
		wire, err := servfail.Encode()
		if err != nil {
			return nil
		}
		return wire
	}

	// The forwarding server's identity is its source address (ports vary
	// per query; the host is the stable identity).
	server := from.String()
	if host, _, err := net.SplitHostPort(server); err == nil {
		server = host
	}
	rec := trace.ObservedRecord{
		T:      sim.Time(time.Now().UnixMilli()),
		Server: server,
		Domain: domain,
	}
	durable := false
	if err := s.out.Append(rec); err != nil {
		s.recordWriteError(err)
	} else {
		s.m.observed.Inc()
		s.consumed++
		durable = true
	}
	if s.est != nil {
		// Backpressure from the engine's shard channels bounds queuing;
		// the only possible error is "engine closed" during shutdown.
		s.est.Observe(rec) //nolint:errcheck
		// Checkpoint on cadence, keyed to the durable record count — a
		// record that failed to persist must not advance the cut, or a
		// later replay would miss it. The state export is a brief in-memory
		// barrier; file I/O happens off this goroutine.
		if s.ck != nil && durable {
			if err := s.ck.Maybe(s.est, s.consumed); err != nil {
				s.mu.Lock()
				s.ckErrs++
				n := s.ckErrs
				s.mu.Unlock()
				if n <= 3 {
					s.log.Error("checkpoint error", "count", n, "err", err)
				}
			}
		}
	}
	// Deterministic crash injection ("die after N records") sits at the end
	// of the observation path, so the Nth record's full effect — durable
	// append, engine state, any due checkpoint — precedes the crash.
	s.crash.Record()

	ip := s.zone[domain]
	resp := dnswire.NewResponse(msg, ip, s.ttl)
	wire, err := resp.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// writeErrors reports how many observations failed to persist.
func (s *sink) writeErrors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErrs
}

// parseCrash builds the crash injector from the -crash flag (nil when
// disabled; nil crashers are safe to call).
func parseCrash(spec string) (*faults.Crasher, error) {
	s, err := faults.ParseCrashSpec(spec)
	if err != nil {
		return nil, err
	}
	return faults.NewCrasher(s), nil
}

// replayObserved feeds the durable observed dataset through the engine,
// discarding the first skip records (the restored checkpoint already holds
// their effects), and returns the total well-formed record count — the
// starting source position for new checkpoints. Lenient parsing matches
// the live capture's torn-tail tolerance; a missing file means a first
// start (0 records).
func replayObserved(e *stream.Engine, path string, skip uint64) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	var n uint64
	_, err = trace.StreamObserved(f, "jsonl", trace.ReadOptions{Lenient: true}, func(rec trace.ObservedRecord) error {
		n++
		if n <= skip {
			return nil
		}
		return e.Observe(rec)
	})
	return n, err
}

// loadZone reads "domain [ip]" lines; a missing IP defaults to 192.0.2.1
// (TEST-NET-1), the convention for sinkholes.
func loadZone(path string) (map[string]net.IP, error) {
	zone := make(map[string]net.IP)
	if path == "" {
		return zone, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ip := net.ParseIP("192.0.2.1")
		if len(fields) > 1 {
			if ip = net.ParseIP(fields[1]); ip == nil {
				return nil, fmt.Errorf("zone %s:%d: bad IP %q", path, lineNo, fields[1])
			}
		}
		zone[strings.ToLower(strings.TrimSuffix(fields[0], "."))] = ip
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return zone, nil
}
