package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/obs"
	"botmeter/internal/obs/series"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

const fedEpochLen = sim.Hour

// fedTrace builds a deterministic observable trace: real barrels from the
// family's rotating pool plus unmatched noise, in timestamp order.
func fedTrace(t *testing.T, spec dga.Spec, seed uint64, servers, epochs, activations int) trace.Observed {
	t.Helper()
	var out trace.Observed
	for ep := 0; ep < epochs; ep++ {
		pool := spec.Pool.PoolFor(seed, ep)
		epochStart := sim.Time(ep) * fedEpochLen
		margin := fedEpochLen - spec.MaxDuration()
		if margin <= 0 {
			t.Fatalf("activation duration %v exceeds the epoch", spec.MaxDuration())
		}
		for sv := 0; sv < servers; sv++ {
			name := fmt.Sprintf("border-%d", sv)
			rng := sim.SplitFrom(seed, uint64(ep)*1_000_003+uint64(sv))
			for a := 0; a < activations; a++ {
				start := epochStart + sim.Time(rng.Int64N(int64(margin)))
				positions := dga.ExecuteBarrel(pool, spec.Barrel.Barrel(pool, spec.ThetaQ, rng))
				at := start
				for _, pos := range positions {
					out = append(out, trace.ObservedRecord{T: at, Server: name, Domain: pool.Domains[pos]})
					at += spec.Interval(rng)
				}
			}
			out = append(out, trace.ObservedRecord{
				T:      epochStart + sim.Time(rng.Int64N(int64(fedEpochLen))),
				Server: name,
				Domain: fmt.Sprintf("noise-%d-%d.example", ep, sv),
			})
		}
	}
	out.Sort()
	return out
}

// splitByServer deals servers round-robin (by first appearance) across n
// server-disjoint partitions — the federation's deployment contract.
func splitByServer(recs trace.Observed, n int) []trace.Observed {
	assign := make(map[string]int)
	parts := make([]trace.Observed, n)
	for _, rec := range recs {
		i, ok := assign[rec.Server]
		if !ok {
			i = len(assign) % n
			assign[rec.Server] = i
		}
		parts[i] = append(parts[i], rec)
	}
	return parts
}

// vantagePoint is one live vantage daemon stand-in: a real streaming
// engine behind a real diagnostics mux serving /state.
type vantagePoint struct {
	eng *stream.Engine
	srv *httptest.Server
}

func startVantagePoint(t *testing.T, cfg stream.Config, recs trace.Observed) *vantagePoint {
	t.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New(%s): %v", cfg.Vantage, err)
	}
	for _, rec := range recs {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe(%s): %v", cfg.Vantage, err)
		}
	}
	mux := obs.NewMux(obs.MuxConfig{State: func() ([]byte, error) {
		st, err := eng.ExportState()
		if err != nil {
			return nil, err
		}
		return stream.EncodeCheckpoint(st)
	}})
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); eng.Kill() })
	return &vantagePoint{eng: eng, srv: srv}
}

func fedConfig(spec dga.Spec, seed uint64, vantage string) stream.Config {
	return stream.Config{
		Core:    core.Config{Family: spec, Seed: seed, EpochLen: fedEpochLen},
		Shards:  2,
		Vantage: vantage,
	}
}

func testCoordinator(t *testing.T, reg *obs.Registry, urls []string, slo time.Duration) *coordinator {
	t.Helper()
	return newCoordinator(coordinatorConfig{
		Registry:     reg,
		Store:        series.NewStore(series.Config{Capacity: 64, Step: time.Second}),
		Vantages:     urls,
		FreshnessSLO: slo,
		SLOFor:       1,
		HTTPTimeout:  5 * time.Second,
	})
}

// referenceJSON is the single-engine-over-the-union landscape the merged
// coordinator must reproduce byte for byte.
func referenceJSON(t *testing.T, cfg stream.Config, recs trace.Observed) []byte {
	t.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New(reference): %v", err)
	}
	defer eng.Kill()
	for _, rec := range recs {
		if err := eng.Observe(rec); err != nil {
			t.Fatalf("Observe(reference): %v", err)
		}
	}
	if err := eng.Quiesce(); err != nil {
		t.Fatalf("Quiesce(reference): %v", err)
	}
	body, err := eng.LandscapeJSON()
	if err != nil {
		t.Fatalf("LandscapeJSON(reference): %v", err)
	}
	return body
}

func TestFederationEndToEnd(t *testing.T) {
	spec := dga.Murofet()
	const seed = 7
	recs := fedTrace(t, spec, seed, 6, 2, 1)
	parts := splitByServer(recs, 2)
	vp0 := startVantagePoint(t, fedConfig(spec, seed, "v0"), parts[0])
	vp1 := startVantagePoint(t, fedConfig(spec, seed, "v1"), parts[1])
	urls := []string{vp0.srv.URL, vp1.srv.URL}

	reg := obs.NewRegistry()
	c := testCoordinator(t, reg, urls, time.Hour)
	front := httptest.NewServer(c.handler())
	defer front.Close()

	// Before any pull, /landscape is an honest 503.
	resp, err := http.Get(front.URL + "/landscape")
	if err != nil {
		t.Fatalf("GET /landscape: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-merge /landscape status = %d, want 503", resp.StatusCode)
	}

	c.pullAll(context.Background(), 2)

	resp, err = http.Get(front.URL + "/landscape")
	if err != nil {
		t.Fatalf("GET /landscape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/landscape status = %d: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("/landscape has no ETag")
	}
	want := referenceJSON(t, fedConfig(spec, seed, ""), recs)
	if !bytes.Equal(body, want) {
		t.Fatalf("merged /landscape differs from single engine:\nsingle %s\nmerged %s", want, body)
	}
	sum := sha256.Sum256(body)
	if wantTag := `"` + hex.EncodeToString(sum[:]) + `"`; etag != wantTag {
		t.Fatalf("ETag %s is not the body's sha256 %s", etag, wantTag)
	}

	// Conditional revalidation: matching tag → 304 with no body; a stale
	// tag → full 200.
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/landscape", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("conditional GET: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional GET = %d with %d body bytes, want bare 304", resp.StatusCode, len(b))
	}
	req.Header.Set("If-None-Match", `"stale"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stale conditional GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET = %d, want 200", resp.StatusCode)
	}

	// /healthz names both vantage identities and is healthy.
	resp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", resp.StatusCode, hb)
	}
	for _, wantSub := range []string{"identities v0", "identities v1", "pulls 1, failures 0"} {
		if !strings.Contains(string(hb), wantSub) {
			t.Fatalf("/healthz body %q missing %q", hb, wantSub)
		}
	}

	// Per-vantage freshness and pull counters are in /metrics.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, url := range urls {
		if want := metricFreshness + `{vantage="` + url + `"}`; !strings.Contains(string(mb), want) {
			t.Fatalf("/metrics missing %s", want)
		}
		if got := reg.CounterValue(metricPulls, "vantage", url); got != 1 {
			t.Fatalf("%s{vantage=%s} = %d, want 1", metricPulls, url, got)
		}
		if age := reg.GaugeValue(metricFreshness, "vantage", url); age < 0 || age > 60 {
			t.Fatalf("freshness gauge for %s = %v, want a small positive age", url, age)
		}
	}
	if got := reg.GaugeValue(metricVantages); got != 2 {
		t.Fatalf("%s = %v, want 2", metricVantages, got)
	}

	// /state round-trips to the merged sufficient statistics (coordinator
	// chaining), naming both vantages.
	resp, err = http.Get(front.URL + "/state")
	if err != nil {
		t.Fatalf("GET /state: %v", err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	st, err := stream.DecodeCheckpoint(frame)
	if err != nil {
		t.Fatalf("decoding /state: %v", err)
	}
	if len(st.Vantages) != 2 || st.Vantages[0] != "v0" || st.Vantages[1] != "v1" {
		t.Fatalf("/state vantages = %v, want [v0 v1]", st.Vantages)
	}

	// A third vantage pushes its snapshot; the landscape re-merges and the
	// ETag changes.
	extra := trace.Observed{
		{T: 10 * sim.Minute, Server: "border-pushed", Domain: "noise-pushed.example"},
	}
	vp2 := startVantagePoint(t, fedConfig(spec, seed, "v2"), extra)
	stFrame, err := func() ([]byte, error) {
		s, err := vp2.eng.ExportState()
		if err != nil {
			return nil, err
		}
		return stream.EncodeCheckpoint(s)
	}()
	if err != nil {
		t.Fatalf("exporting push frame: %v", err)
	}
	resp, err = http.Post(front.URL+"/push", "application/octet-stream", bytes.NewReader(stFrame))
	if err != nil {
		t.Fatalf("POST /push: %v", err)
	}
	pb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /push = %d: %s", resp.StatusCode, pb)
	}
	resp, err = http.Get(front.URL + "/landscape")
	if err != nil {
		t.Fatalf("GET /landscape after push: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if newTag := resp.Header.Get("ETag"); newTag == etag {
		t.Fatal("ETag did not change after a push merged new state")
	}
}

// TestFederationConcurrentClients is the acceptance smoke: ≥100 clients
// revalidate /landscape with If-None-Match while the coordinator keeps
// merging fresh vantage state. Every 200 body must hash to its own ETag;
// every 304 must be empty.
func TestFederationConcurrentClients(t *testing.T) {
	spec := dga.Murofet()
	const seed = 21
	recs := fedTrace(t, spec, seed, 4, 2, 1)
	parts := splitByServer(recs, 2)
	// Hold half of each vantage's records back: the background merger
	// keeps the landscape changing under the clients.
	feedNow := make([]trace.Observed, 2)
	feedLater := make([]trace.Observed, 2)
	for i, part := range parts {
		half := len(part) / 2
		feedNow[i], feedLater[i] = part[:half], part[half:]
	}
	vps := []*vantagePoint{
		startVantagePoint(t, fedConfig(spec, seed, "v0"), feedNow[0]),
		startVantagePoint(t, fedConfig(spec, seed, "v1"), feedNow[1]),
	}
	c := testCoordinator(t, obs.NewRegistry(), []string{vps[0].srv.URL, vps[1].srv.URL}, time.Hour)
	c.pullAll(context.Background(), 2)
	front := httptest.NewServer(c.handler())
	defer front.Close()

	stop := make(chan struct{})
	var merges sync.WaitGroup
	merges.Add(1)
	go func() {
		defer merges.Done()
		pos := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Trickle pending records into the vantages, then re-pull.
			for i, vp := range vps {
				later := feedLater[i]
				for j := 0; j < 40 && pos+j < len(later); j++ {
					vp.eng.Observe(later[pos+j]) //nolint:errcheck
				}
			}
			pos += 40
			c.pullAll(context.Background(), 2)
		}
	}()

	const clients = 120
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for n := 0; n < 5; n++ {
				req, err := http.NewRequest(http.MethodGet, front.URL+"/landscape", nil)
				if err != nil {
					errs <- err
					return
				}
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					sum := sha256.Sum256(body)
					if want := `"` + hex.EncodeToString(sum[:]) + `"`; resp.Header.Get("ETag") != want {
						errs <- fmt.Errorf("ETag %s does not hash the body (%s)", resp.Header.Get("ETag"), want)
						return
					}
					etag = resp.Header.Get("ETag")
				case http.StatusNotModified:
					if len(body) != 0 {
						errs <- fmt.Errorf("304 carried %d body bytes", len(body))
						return
					}
				default:
					errs <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	merges.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFederationFingerprintMismatch: a vantage analysing a different
// configuration is refused at merge time with the typed error, and
// /healthz degrades naming the divergent field.
func TestFederationFingerprintMismatch(t *testing.T) {
	spec := dga.Murofet()
	recs := fedTrace(t, spec, 7, 2, 1, 1)
	good := startVantagePoint(t, fedConfig(spec, 7, "good"), recs)
	bad := startVantagePoint(t, fedConfig(spec, 8, "bad"), nil) // different DGA seed
	reg := obs.NewRegistry()
	// fan-in 1 serializes pulls in URL order, so "good" pins the group
	// fingerprint before "bad" arrives.
	c := testCoordinator(t, reg, []string{good.srv.URL, bad.srv.URL}, 0)
	c.pullAll(context.Background(), 1)

	front := httptest.NewServer(c.handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "seed") {
		t.Fatalf("/healthz body %q does not name the divergent field", body)
	}
	if got := reg.CounterValue(metricPullErrors, "vantage", bad.srv.URL); got != 1 {
		t.Fatalf("pull errors for the bad vantage = %d, want 1", got)
	}
	// The good vantage's landscape is still served.
	resp, err = http.Get(front.URL + "/landscape")
	if err != nil {
		t.Fatalf("GET /landscape: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/landscape = %d, want 200 from the healthy vantage", resp.StatusCode)
	}
}

// TestFederationFreshnessSLO: an unreachable vantage trips the freshness
// rule and /healthz degrades.
func TestFederationFreshnessSLO(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // refuse connections
	c := testCoordinator(t, obs.NewRegistry(), []string{dead.URL}, time.Nanosecond)
	c.pullAll(context.Background(), 1)
	err := c.health()
	if err == nil || !strings.Contains(err.Error(), "freshness") {
		t.Fatalf("health after a stale vantage = %v, want a freshness violation", err)
	}
}

// TestFederationPushValidation: /push refuses non-POSTs, undecodable
// frames and anonymous snapshots, and /state is a 500 before the first
// merge.
func TestFederationPushValidation(t *testing.T) {
	c := testCoordinator(t, obs.NewRegistry(), nil, 0)
	front := httptest.NewServer(c.handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/push")
	if err != nil {
		t.Fatalf("GET /push: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /push = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(front.URL+"/push", "application/octet-stream", strings.NewReader("not a frame"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("POST garbage = %d, want 422", resp.StatusCode)
	}

	// A frame from an engine with no -vantage-id has no identity to merge
	// under.
	anon := startVantagePoint(t, fedConfig(dga.Murofet(), 7, ""), nil)
	st, err := anon.eng.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	frame, err := stream.EncodeCheckpoint(st)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	resp, err = http.Post(front.URL+"/push", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("POST anonymous frame: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(body), "vantage-id") {
		t.Fatalf("POST anonymous frame = %d %q, want 422 naming -vantage-id", resp.StatusCode, body)
	}

	resp, err = http.Get(front.URL + "/state")
	if err != nil {
		t.Fatalf("GET /state: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("pre-merge /state = %d, want 500", resp.StatusCode)
	}
}

// TestRunPullLoop drives the whole daemon: real flags, a real vantage to
// poll, and a context cancel for shutdown.
func TestRunPullLoop(t *testing.T) {
	spec := dga.Murofet()
	recs := fedTrace(t, spec, 7, 2, 1, 1)
	vp := startVantagePoint(t, fedConfig(spec, 7, "solo"), recs)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-vantages", vp.srv.URL,
			"-pull-interval", "10ms",
			"-freshness-slo", "1h",
		}, os.Stderr)
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop on context cancel")
	}

	// Push-only mode (no vantages) also starts and stops cleanly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		done <- run(ctx2, []string{"-listen", "127.0.0.1:0"}, os.Stderr)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run (push-only): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push-only run did not stop on context cancel")
	}
}

// TestRunFlagValidation covers the daemon's argument errors.
func TestRunFlagValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, args := range [][]string{
		{"-fan-in", "0"},
		{"-vantages", " , "},
		{"-log-level", "verbose"},
		{"-log-format", "xml"},
		{"-bogus"},
	} {
		if err := run(ctx, args, os.Stderr); err == nil {
			t.Fatalf("run(%v) accepted bad flags", args)
		}
	}
}
