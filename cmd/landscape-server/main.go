// Command landscape-server is the federation coordinator: it pulls (or
// receives) exported engine state from N vantage daemons, merges the
// sufficient statistics into one landscape (DESIGN.md §18) and serves the
// result to many concurrent clients.
//
// Each vantage runs `vantage -live-estimate ... -vantage-id NAME`, whose
// diagnostics endpoint serves the engine's exported state as a checkpoint
// frame at /state. This daemon polls those endpoints on an interval with
// bounded fan-in, folds every snapshot through stream.MergeStates — exact
// because each border server forwards to exactly one vantage — and
// publishes:
//
//	/landscape   merged landscape JSON, with a strong ETag; clients that
//	             revalidate with If-None-Match get 304 while unchanged
//	/state       the merged sufficient statistics themselves (checkpoint
//	             frame), so coordinators can be chained
//	/push        POST a checkpoint frame instead of being polled
//	/healthz     degraded on stale vantages (freshness SLO) and on
//	             fingerprint divergence, with the offending fields named
//	/metrics     per-vantage freshness/pull gauges and counters
//
// The served landscape is rebuilt copy-on-write: each merge produces a new
// immutable snapshot swapped in atomically, so /landscape readers never
// block the pull loop and never observe a half-merged chart.
//
// Usage:
//
//	landscape-server -listen 127.0.0.1:8090 \
//	  -vantages http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	  -pull-interval 5s -freshness-slo 30s
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"botmeter/internal/obs"
	"botmeter/internal/obs/rules"
	"botmeter/internal/obs/series"
	"botmeter/internal/stream"
)

// Metric families exported by the coordinator.
const (
	metricPulls       = "landscape_server_pulls_total"
	metricPullErrors  = "landscape_server_pull_errors_total"
	metricFreshness   = "landscape_server_vantage_freshness_seconds"
	metricVantages    = "landscape_server_vantages"
	metricMerges      = "landscape_server_merges_total"
	metricMergeErrors = "landscape_server_merge_errors_total"
	metricRequests    = "landscape_server_landscape_requests_total"
	metricNotModified = "landscape_server_not_modified_total"
)

// maxFrameBytes bounds a pulled or pushed checkpoint frame (a frame is
// JSON sufficient statistics, not raw records — far below this in
// practice).
const maxFrameBytes = 256 << 20

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "landscape-server:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("landscape-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8090", "HTTP address serving /landscape, /state, /push, /healthz and /metrics")
	vantagesFlag := fs.String("vantages", "", "comma-separated vantage diagnostic base URLs to pull /state from (empty = push-only)")
	pullInterval := fs.Duration("pull-interval", 5*time.Second, "poll every vantage's /state this often")
	fanIn := fs.Int("fan-in", 4, "maximum concurrent vantage pulls")
	freshnessSLO := fs.Duration("freshness-slo", 0, "degrade /healthz when a vantage's last good snapshot is older than this (0 disables)")
	sloFor := fs.Int("slo-for", 2, "consecutive breaching polls before the freshness SLO fires")
	httpTimeout := fs.Duration("http-timeout", 10*time.Second, "per-pull HTTP timeout")
	historyPoints := fs.Int("history-points", 512, "points kept per /debug/series time series")
	historyStep := fs.Duration("history-step", time.Second, "time-series downsampling step for /debug/series")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "logfmt", "log encoding: logfmt or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(logw, obs.LogConfig{Level: level, Format: format, Component: "landscape-server"})

	var urls []string
	for _, u := range strings.Split(*vantagesFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 && *vantagesFlag != "" {
		return fmt.Errorf("-vantages: no usable URLs in %q", *vantagesFlag)
	}
	if *fanIn < 1 {
		return fmt.Errorf("-fan-in must be at least 1, got %d", *fanIn)
	}

	reg := obs.NewRegistry()
	c := newCoordinator(coordinatorConfig{
		Registry:     reg,
		Logger:       logger,
		Store:        series.NewStore(series.Config{Capacity: *historyPoints, Step: *historyStep}),
		Vantages:     urls,
		FreshnessSLO: *freshnessSLO,
		SLOFor:       *sloFor,
		HTTPTimeout:  *httpTimeout,
	})

	srv, err := obs.StartHTTP(*listen, c.handler())
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Info("serving",
		"listen", srv.Addr(), "vantages", len(urls),
		"pull_interval", pullInterval.String(), "fan_in", *fanIn)
	if *freshnessSLO > 0 {
		logger.Info("freshness slo armed", "slo", freshnessSLO.String(), "for", *sloFor)
	}

	if len(urls) > 0 {
		ticker := time.NewTicker(*pullInterval)
		defer ticker.Stop()
		for {
			c.pullAll(ctx, *fanIn)
			select {
			case <-ctx.Done():
				return nil
			case <-ticker.C:
			}
		}
	}
	<-ctx.Done()
	return nil
}

// servedLandscape is one immutable published snapshot; rebuilds swap in a
// whole new value, readers load it atomically.
type servedLandscape struct {
	body    []byte
	etag    string
	builtAt time.Time
}

// vantageStatus tracks one pulled vantage endpoint for /healthz and
// /metrics. Keyed by URL (stable before the first successful decode);
// names holds the vantage identities the endpoint declared.
type vantageStatus struct {
	names    []string
	lastOK   time.Time
	lastErr  error
	pulls    uint64
	failures uint64
}

type coordinatorConfig struct {
	Registry     *obs.Registry
	Logger       *obs.Logger
	Store        *series.Store
	Vantages     []string
	FreshnessSLO time.Duration
	SLOFor       int
	HTTPTimeout  time.Duration
	Now          func() time.Time // test hook; nil = time.Now
}

// coordinator merges vantage snapshots and serves the result.
type coordinator struct {
	merger  *stream.Merger
	client  *http.Client
	log     *obs.Logger
	reg     *obs.Registry
	rules   *rules.Engine
	store   *series.Store
	urls    []string
	slo     time.Duration
	started time.Time
	now     func() time.Time

	served atomic.Pointer[servedLandscape]
	state  atomic.Pointer[stream.EngineState]

	mu     sync.Mutex
	status map[string]*vantageStatus
}

func newCoordinator(cfg coordinatorConfig) *coordinator {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	timeout := cfg.HTTPTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c := &coordinator{
		merger:  stream.NewMerger(),
		client:  &http.Client{Timeout: timeout},
		log:     cfg.Logger,
		reg:     cfg.Registry,
		rules:   rules.New(),
		store:   cfg.Store,
		urls:    cfg.Vantages,
		slo:     cfg.FreshnessSLO,
		started: now(),
		now:     now,
		status:  make(map[string]*vantageStatus),
	}
	cfg.Registry.Help(metricPulls, "Vantage /state pulls attempted.")
	cfg.Registry.Help(metricPullErrors, "Vantage /state pulls that failed (fetch, decode or merge).")
	cfg.Registry.Help(metricFreshness, "Seconds since the vantage's last good snapshot was merged.")
	cfg.Registry.Help(metricVantages, "Distinct vantage identities in the merged landscape.")
	cfg.Registry.Help(metricMerges, "Merged-landscape rebuilds published.")
	cfg.Registry.Help(metricMergeErrors, "Merged-landscape rebuilds that failed.")
	cfg.Registry.Help(metricRequests, "/landscape requests served.")
	cfg.Registry.Help(metricNotModified, "/landscape requests answered 304 via If-None-Match.")
	for _, url := range cfg.Vantages {
		url := url
		c.status[url] = &vantageStatus{}
		// Freshness ages between pulls, so it is a callback gauge: always
		// current at scrape time.
		cfg.Registry.GaugeFunc(metricFreshness, func() float64 {
			return c.freshness(url).Seconds()
		}, "vantage", url)
		if cfg.FreshnessSLO > 0 {
			//nolint:errcheck // names are unique (status map keys)
			c.rules.Add(rules.Rule{
				Name:      "freshness:" + url,
				Threshold: cfg.FreshnessSLO.Seconds(),
				For:       cfg.SLOFor,
				Unit:      "s",
			})
		}
	}
	c.rules.OnTransition(func(tr rules.Transition) {
		cfg.Logger.Warn("slo transition",
			"rule", tr.Rule, "from", tr.From.String(), "to", tr.To.String(), "value", fmt.Sprintf("%.3g", tr.Value))
	})
	return c
}

// freshness is the age of a vantage's last good snapshot (time since
// startup when it has never delivered one).
func (c *coordinator) freshness(url string) time.Duration {
	c.mu.Lock()
	st := c.status[url]
	var last time.Time
	if st != nil {
		last = st.lastOK
	}
	c.mu.Unlock()
	if last.IsZero() {
		last = c.started
	}
	return c.now().Sub(last)
}

// handler builds the HTTP surface: the coordinator's own /landscape,
// /push and ETag logic in front of the standard diagnostics mux.
func (c *coordinator) handler() http.Handler {
	inner := obs.NewMux(obs.MuxConfig{
		Registry: c.reg,
		Health:   c.health,
		Status:   c.statusLines,
		Series:   c.store,
		State:    c.stateFrame,
	})
	outer := http.NewServeMux()
	outer.HandleFunc("/landscape", c.handleLandscape)
	outer.HandleFunc("/push", c.handlePush)
	outer.Handle("/", inner)
	return outer
}

// handleLandscape serves the current merged snapshot with a strong ETag.
func (c *coordinator) handleLandscape(w http.ResponseWriter, r *http.Request) {
	c.reg.Counter(metricRequests).Inc()
	cur := c.served.Load()
	if cur == nil {
		http.Error(w, "no merged landscape yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("ETag", cur.etag)
	w.Header().Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, cur.etag) {
		c.reg.Counter(metricNotModified).Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(cur.body) //nolint:errcheck // client gone
}

// etagMatches implements If-None-Match: a comma-separated list of entity
// tags, or "*" matching any current representation.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// handlePush accepts a checkpoint frame from a vantage that pushes
// instead of being polled, merges it and republishes.
func (c *coordinator) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a checkpoint frame", http.StatusMethodNotAllowed)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxFrameBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading frame: %v", err), http.StatusBadRequest)
		return
	}
	names, err := c.ingestFrame(frame)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := c.rebuild(); err != nil {
		http.Error(w, fmt.Sprintf("merge: %v", err), http.StatusUnprocessableEntity)
		return
	}
	c.log.Info("pushed snapshot merged", "vantages", strings.Join(names, ","))
	w.WriteHeader(http.StatusNoContent)
}

// ingestFrame decodes and folds one checkpoint frame into the merger,
// returning the vantage identities it declared.
func (c *coordinator) ingestFrame(frame []byte) ([]string, error) {
	st, err := stream.DecodeCheckpoint(frame)
	if err != nil {
		return nil, fmt.Errorf("decoding frame: %w", err)
	}
	if len(st.Vantages) == 0 {
		return nil, fmt.Errorf("snapshot declares no vantage identity (run the vantage with -vantage-id)")
	}
	if err := c.merger.Update(st); err != nil {
		return nil, err
	}
	return st.Vantages, nil
}

// pullAll polls every configured vantage once, with at most fanIn pulls
// in flight, then republishes the merged landscape and re-evaluates the
// freshness SLO.
func (c *coordinator) pullAll(ctx context.Context, fanIn int) {
	sem := make(chan struct{}, fanIn)
	var wg sync.WaitGroup
	for _, url := range c.urls {
		url := url
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c.pull(ctx, url)
		}()
	}
	wg.Wait()
	if c.merger.Len() > 0 {
		if err := c.rebuild(); err != nil {
			c.log.Error("rebuild failed", "err", err)
		}
	}
	for _, url := range c.urls {
		age := c.freshness(url)
		c.store.Record(series.Name("vantage_freshness_seconds", "vantage", url), age.Seconds())
		c.rules.Eval("freshness:"+url, age.Seconds())
	}
}

// pull fetches one vantage's /state and folds it in.
func (c *coordinator) pull(ctx context.Context, url string) {
	c.reg.Counter(metricPulls, "vantage", url).Inc()
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/state", nil)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("%s/state: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		frame, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes))
		if err != nil {
			return err
		}
		names, err := c.ingestFrame(frame)
		if err != nil {
			return err
		}
		c.mu.Lock()
		st := c.status[url]
		st.names = names
		st.lastOK = c.now()
		st.lastErr = nil
		st.pulls++
		c.mu.Unlock()
		return nil
	}()
	if err != nil {
		c.reg.Counter(metricPullErrors, "vantage", url).Inc()
		c.mu.Lock()
		st := c.status[url]
		st.lastErr = err
		st.pulls++
		st.failures++
		n := st.failures
		c.mu.Unlock()
		if n <= 3 || n%16 == 0 {
			c.log.Error("pull failed", "vantage", url, "failures", n, "err", err)
		}
	}
}

// rebuild merges every held snapshot and publishes a fresh landscape:
// restore a throwaway engine from the merged state, quiesce it so every
// buffered record is reflected, and serialize. The previous snapshot
// stays served until the swap.
func (c *coordinator) rebuild() error {
	err := func() error {
		merged, err := c.merger.Merged()
		if err != nil {
			return err
		}
		cfg, err := stream.ConfigForState(merged)
		if err != nil {
			return err
		}
		eng, err := stream.Restore(cfg, merged)
		if err != nil {
			return err
		}
		defer eng.Kill()
		if err := eng.Quiesce(); err != nil {
			return err
		}
		body, err := eng.LandscapeJSON()
		if err != nil {
			return err
		}
		sum := sha256.Sum256(body)
		c.served.Store(&servedLandscape{
			body:    body,
			etag:    `"` + hex.EncodeToString(sum[:]) + `"`,
			builtAt: c.now(),
		})
		c.state.Store(merged)
		c.reg.Counter(metricMerges).Inc()
		c.reg.Gauge(metricVantages).Set(float64(len(merged.Vantages)))
		return nil
	}()
	if err != nil {
		c.reg.Counter(metricMergeErrors).Inc()
	}
	return err
}

// stateFrame serves the merged sufficient statistics (for /state), so
// coordinators can themselves be federated.
func (c *coordinator) stateFrame() ([]byte, error) {
	st := c.state.Load()
	if st == nil {
		return nil, fmt.Errorf("no merged state yet")
	}
	return stream.EncodeCheckpoint(st)
}

// health implements /healthz: unhealthy while a freshness SLO fires or
// any vantage's last pull failed on fingerprint divergence — a
// configuration split that will never heal on its own, named field by
// field via the typed error.
func (c *coordinator) health() error {
	if err := c.rules.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, url := range c.urls {
		st := c.status[url]
		var mismatch *stream.FingerprintMismatchError
		if st != nil && errors.As(st.lastErr, &mismatch) {
			return fmt.Errorf("vantage %s: %w", url, st.lastErr)
		}
	}
	return nil
}

// statusLines contributes per-vantage detail to a healthy /healthz body.
func (c *coordinator) statusLines() string {
	var lines []string
	if cur := c.served.Load(); cur != nil {
		lines = append(lines, fmt.Sprintf("landscape built %s ago, etag %s",
			c.now().Sub(cur.builtAt).Round(time.Millisecond), cur.etag))
	}
	c.mu.Lock()
	urls := make([]string, 0, len(c.status))
	for url := range c.status {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		st := c.status[url]
		line := fmt.Sprintf("vantage %s: pulls %d, failures %d", url, st.pulls, st.failures)
		if len(st.names) > 0 {
			line += ", identities " + strings.Join(st.names, "+")
		}
		if !st.lastOK.IsZero() {
			line += fmt.Sprintf(", fresh %s ago", c.now().Sub(st.lastOK).Round(time.Millisecond))
		}
		if st.lastErr != nil {
			line += ", last error: " + st.lastErr.Error()
		}
		lines = append(lines, line)
	}
	c.mu.Unlock()
	return strings.Join(lines, "\n")
}
