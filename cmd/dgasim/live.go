package main

import (
	"fmt"
	"net"
	"time"

	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/sim"
)

// liveRun drives a bot population against a REAL resolver over UDP: each
// bot draws its barrel from today's pool (epoch = current Unix day, the
// same convention cmd/botmeter applies to live observations) and queries
// until it gets a positive answer or exhausts θq. Pacing is compressed —
// set-based estimation doesn't need wall-clock gaps, and nobody wants to
// wait δi·θq for a demo.
//
// Together with cmd/vantage and cmd/resolver this exercises the paper's
// whole Figure 1 as processes:
//
//	vantage  -listen 127.0.0.1:5300 -observed obs.jsonl &
//	resolver -listen 127.0.0.1:5301 -upstream 127.0.0.1:5300 &
//	dgasim   -family newgoz -bots 32 -live 127.0.0.1:5301
//	botmeter -family newgoz -in obs.jsonl -format jsonl
func liveRun(spec dga.Spec, seed uint64, bots int, resolverAddr string, timeout time.Duration) error {
	epoch := int(time.Now().UnixMilli() / int64(sim.Day))
	pool := spec.Pool.PoolFor(seed, epoch)
	conn, err := net.Dial("udp", resolverAddr)
	if err != nil {
		return fmt.Errorf("dgasim: dialing resolver: %w", err)
	}
	defer conn.Close()

	buf := make([]byte, 65535)
	var sent, contacts int
	for b := 0; b < bots; b++ {
		rng := sim.SplitFrom(seed, uint64(epoch)*31+uint64(b))
		barrel := spec.Barrel.Barrel(pool, spec.ThetaQ, rng)
		var id uint16
		for _, pos := range barrel {
			domain := pool.Domains[pos]
			id++
			wire, err := dnswire.NewQuery(id, domain).Encode()
			if err != nil {
				return err
			}
			if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
				return err
			}
			if _, err := conn.Write(wire); err != nil {
				return err
			}
			sent++
			n, err := conn.Read(buf)
			if err != nil {
				// Treat a lost/slow answer as NXD and move on, like a
				// real stub resolver under timeout.
				continue
			}
			resp, err := dnswire.Decode(buf[:n])
			if err != nil {
				continue
			}
			if resp.Header.Rcode == dnswire.RcodeNoError && len(resp.Answers) > 0 {
				contacts++
				break // rendezvous established
			}
		}
	}
	fmt.Printf("live: epoch %d, %d bots, %d queries sent, %d C2 contacts\n",
		epoch, bots, sent, contacts)
	return nil
}
