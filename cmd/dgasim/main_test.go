package main

import (
	"os"
	"path/filepath"
	"testing"

	"botmeter/internal/trace"
)

func TestRunGeneratesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "obs.csv")
	raw := filepath.Join(dir, "raw.csv")
	err := run([]string{
		"-family", "srizbi", "-bots", "5", "-days", "1",
		"-out", out, "-raw", raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	obs, err := trace.ReadObservedCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Error("no observations written")
	}
	rf, err := os.Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rawRecs, err := trace.ReadRawCSV(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawRecs) < len(obs) {
		t.Errorf("raw (%d) should be at least as large as observed (%d)", len(rawRecs), len(obs))
	}
}

func TestRunGeneratesJSONL(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "obs.jsonl")
	if err := run([]string{"-family", "torpig", "-bots", "3", "-format", "jsonl", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	obs, err := trace.ReadObservedJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Error("no observations written")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestRunMultiServer(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "obs.csv")
	if err := run([]string{"-family", "srizbi", "-bots", "4", "-servers", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	obs, err := trace.ReadObservedCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	servers := obs.Servers()
	if len(servers) != 3 {
		t.Errorf("servers in trace = %v, want 3", servers)
	}
}
