package main

import (
	"net"
	"sync"
	"testing"
	"time"

	"botmeter/internal/dga"
	"botmeter/internal/dnswire"
	"botmeter/internal/estimators"
	"botmeter/internal/sim"
	"botmeter/internal/stats"
	"botmeter/internal/trace"
)

// borderStub is an in-test vantage point: answers registered domains,
// NXDOMAIN otherwise, and records every query as an observation.
type borderStub struct {
	conn       net.PacketConn
	registered map[string]bool

	mu       sync.Mutex
	observed trace.Observed
}

func startBorderStub(t *testing.T, registered []string) *borderStub {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	s := &borderStub{conn: conn, registered: make(map[string]bool, len(registered))}
	for _, d := range registered {
		s.registered[d] = true
	}
	go func() {
		buf := make([]byte, 65535)
		for {
			n, addr, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := dnswire.Decode(buf[:n])
			if err != nil || len(msg.Questions) == 0 {
				continue
			}
			name := msg.Questions[0].Name
			s.mu.Lock()
			s.observed = append(s.observed, trace.ObservedRecord{
				T:      sim.Time(time.Now().UnixMilli()),
				Server: "live-local",
				Domain: name,
			})
			s.mu.Unlock()
			var ip net.IP
			if s.registered[name] {
				ip = net.ParseIP("192.0.2.88")
			}
			if resp, err := dnswire.NewResponse(msg, ip, 60).Encode(); err == nil {
				conn.WriteTo(resp, addr)
			}
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return s
}

// TestLiveRunEndToEnd sends real UDP DNS traffic from a simulated AR
// botnet and checks that the Bernoulli estimator recovers the population
// from the live observations — the paper's pipeline over actual sockets.
func TestLiveRunEndToEnd(t *testing.T) {
	spec := dga.Spec{
		Name:          "live-AR",
		Pool:          dga.DrainReplenish{NX: 495, C2: 5, Gen: dga.DefaultGenerator},
		Barrel:        dga.RandomCut{},
		ThetaQ:        40,
		QueryInterval: sim.Second,
	}
	const (
		seed = uint64(321)
		bots = 16
	)
	epoch := int(time.Now().UnixMilli() / int64(sim.Day))
	pool := spec.Pool.PoolFor(seed, epoch)
	var registered []string
	for _, p := range pool.ValidPositions {
		registered = append(registered, pool.Domains[p])
	}
	stub := startBorderStub(t, registered)

	if err := liveRun(spec, seed, bots, stub.conn.LocalAddr().String(), time.Second); err != nil {
		t.Fatal(err)
	}

	stub.mu.Lock()
	obs := append(trace.Observed{}, stub.observed...)
	stub.mu.Unlock()
	if len(obs) == 0 {
		t.Fatal("no live observations recorded")
	}
	// All queried domains come from today's pool.
	for _, rec := range obs {
		if !pool.Contains(rec.Domain) {
			t.Fatalf("live query outside pool: %q", rec.Domain)
		}
	}
	mb := estimators.NewBernoulli()
	got, err := mb.EstimateEpoch(obs, epoch, estimators.Config{Spec: spec, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if are := stats.ARE(got, bots); are > 0.5 {
		t.Errorf("live MB estimate %v vs %d bots (ARE %.2f)", got, bots, are)
	}
}

func TestRunLiveFlagRejectsBadResolver(t *testing.T) {
	err := run([]string{"-family", "srizbi", "-bots", "1", "-live", "this is not an address"})
	if err == nil {
		t.Error("bad resolver address should fail")
	}
}
