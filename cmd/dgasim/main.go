// Command dgasim generates synthetic DNS traces for a DGA-infected
// network: the cache-filtered observable dataset (what a border vantage
// point sees) and optionally the raw client-level dataset (ground truth).
//
// Usage:
//
//	dgasim -family newgoz -bots 64 -days 2 -out observed.csv -raw raw.csv
//	dgasim -family conficker.c -bots 128 -servers 4 -format jsonl -out obs.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgasim", flag.ContinueOnError)
	family := fs.String("family", "newGoZ", "DGA family preset (see -list)")
	list := fs.Bool("list", false, "list available family presets and exit")
	bots := fs.Int("bots", 64, "bots per local server")
	servers := fs.Int("servers", 1, "number of local DNS servers")
	days := fs.Int("days", 1, "trace length in epochs")
	seed := fs.Uint64("seed", 1, "simulation seed")
	sigma := fs.Float64("sigma", 0, "activation-rate dynamics σ (0 = constant)")
	negTTL := fs.Duration("neg-ttl", 2*60*60*1e9, "negative cache TTL")
	granularity := fs.Duration("granularity", 100*1e6, "vantage timestamp granularity")
	format := fs.String("format", "csv", "output format: csv or jsonl")
	out := fs.String("out", "", "observable dataset output path (default stdout)")
	raw := fs.String("raw", "", "also write the raw (ground-truth) dataset here")
	live := fs.String("live", "", "send REAL DNS queries to this resolver address instead of simulating")
	liveTimeout := fs.Duration("live-timeout", 500*1e6, "per-query timeout in live mode")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range dga.FamilyNames() {
			spec, _ := dga.Lookup(name)
			fmt.Printf("%-12s %-30s θq=%-6d δi=%v\n", name, spec.ModelName(), spec.ThetaQ, spec.QueryInterval.Duration())
		}
		return nil
	}

	spec, err := dga.Lookup(*family)
	if err != nil {
		return err
	}
	if *live != "" {
		return liveRun(spec, *seed, *bots, *live, *liveTimeout)
	}
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: *servers,
		PositiveTTL:  sim.Day,
		NegativeTTL:  sim.FromDuration(*negTTL),
		Granularity:  sim.FromDuration(*granularity),
		RecordRaw:    *raw != "",
	})
	botsPerServer := make(map[string]int, *servers)
	for _, id := range net.LocalIDs() {
		botsPerServer[id] = *bots
	}
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          *seed,
		Activation:    sim.ActivationModel{Sigma: *sigma},
		BotsPerServer: botsPerServer,
	}, net)
	if err != nil {
		return err
	}
	w := sim.Window{Start: 0, End: sim.Time(*days) * sim.Day}
	res, err := runner.Run(w)
	if err != nil {
		return err
	}

	obs := net.Border.Observed()
	obs.Sort()
	if err := writeObserved(*out, *format, obs); err != nil {
		return err
	}
	if *raw != "" {
		rawData := net.Raw()
		rawData.Sort()
		if err := writeRaw(*raw, *format, rawData); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "family=%s model=%s epochs=%d queries=%d observed=%d c2-contacts=%d\n",
		spec.Name, spec.ModelName(), len(res.Epochs), res.QueriesIssued, len(obs), res.C2Contacts)
	for _, id := range net.LocalIDs() {
		fmt.Fprintf(os.Stderr, "  %s active-bots-per-epoch=%v\n", id, res.ActiveBots[id])
	}
	return nil
}

func writeObserved(path, format string, obs trace.Observed) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "jsonl" {
		return trace.WriteObservedJSONL(w, obs)
	}
	return trace.WriteObservedCSV(w, obs)
}

func writeRaw(path, format string, rec trace.Raw) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "jsonl" {
		return trace.WriteRawJSONL(f, rec)
	}
	return trace.WriteRawCSV(f, rec)
}
