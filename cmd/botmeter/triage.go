package main

import (
	"fmt"
	"sort"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/sim"
)

// runTriage analyses one trace against EVERY family preset — the first
// question an analyst actually has is "which botnets are in here at all?".
// Families with matched traffic are ranked by estimated total population.
func runTriage(in, format string, lenient bool, seed uint64, negTTL, granularity sim.Time) error {
	obs, err := readObserved(in, format, lenient)
	if err != nil {
		return err
	}
	if len(obs) == 0 {
		return fmt.Errorf("no observations in input")
	}
	obs.Sort()
	start := (obs[0].T / sim.Day) * sim.Day
	end := (obs[len(obs)-1].T/sim.Day + 1) * sim.Day
	w := sim.Window{Start: start, End: end}

	type hit struct {
		family    string
		model     string
		estimator string
		matched   int
		total     float64
		servers   int
	}
	var hits []hit
	for _, name := range dga.FamilyNames() {
		spec, err := dga.Lookup(name)
		if err != nil {
			return err
		}
		bm, err := core.New(core.Config{
			Family:      spec,
			Seed:        seed,
			NegativeTTL: negTTL,
			Granularity: granularity,
		})
		if err != nil {
			return err
		}
		land, err := bm.Analyze(obs, w)
		if err != nil {
			return fmt.Errorf("triage %s: %w", name, err)
		}
		if land.MatchedLookups == 0 {
			continue
		}
		hits = append(hits, hit{
			family:    spec.Name,
			model:     spec.ModelName(),
			estimator: land.Estimator,
			matched:   land.MatchedLookups,
			total:     land.Total,
			servers:   len(land.Servers),
		})
	}
	if len(hits) == 0 {
		fmt.Println("no known DGA family matched this trace (with the given seed)")
		return nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].total > hits[j].total })
	fmt.Printf("triage across %d family presets — %d matched\n", len(dga.FamilyNames()), len(hits))
	fmt.Printf("%-12s %-28s %-5s %10s %10s %8s\n",
		"family", "model", "est", "est. bots", "lookups", "servers")
	for _, h := range hits {
		fmt.Printf("%-12s %-28s %-5s %10.1f %10d %8d\n",
			h.family, h.model, h.estimator, h.total, h.matched, h.servers)
	}
	return nil
}
