package main

import (
	"fmt"
	"sort"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
)

// runTriage analyses one trace against EVERY family preset — the first
// question an analyst actually has is "which botnets are in here at all?".
// Families with matched traffic are ranked by estimated total population.
// A non-nil stage set (botmeter -verbose) records the trace read plus one
// "triage:<family>" stage per preset.
func runTriage(in, format string, lenient bool, seed uint64, negTTL, granularity sim.Time, stages *obs.StageSet) error {
	readStage := stages.Start("read-trace")
	observed, err := readObserved(in, format, lenient)
	readStage.End()
	if err != nil {
		return err
	}
	if len(observed) == 0 {
		return fmt.Errorf("no observations in input")
	}
	observed.Sort()
	start := (observed[0].T / sim.Day) * sim.Day
	end := (observed[len(observed)-1].T/sim.Day + 1) * sim.Day
	w := sim.Window{Start: start, End: end}

	type hit struct {
		family    string
		model     string
		estimator string
		matched   int
		total     float64
		servers   int
	}
	var hits []hit
	for _, name := range dga.FamilyNames() {
		famStage := stages.Start("triage:" + name)
		spec, err := dga.Lookup(name)
		if err != nil {
			famStage.End()
			return err
		}
		bm, err := core.New(core.Config{
			Family:      spec,
			Seed:        seed,
			NegativeTTL: negTTL,
			Granularity: granularity,
		})
		if err != nil {
			famStage.End()
			return err
		}
		land, err := bm.Analyze(observed, w)
		famStage.End()
		if err != nil {
			return fmt.Errorf("triage %s: %w", name, err)
		}
		if land.MatchedLookups == 0 {
			continue
		}
		hits = append(hits, hit{
			family:    spec.Name,
			model:     spec.ModelName(),
			estimator: land.Estimator,
			matched:   land.MatchedLookups,
			total:     land.Total,
			servers:   len(land.Servers),
		})
	}
	if len(hits) == 0 {
		fmt.Println("no known DGA family matched this trace (with the given seed)")
		return nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].total > hits[j].total })
	fmt.Printf("triage across %d family presets — %d matched\n", len(dga.FamilyNames()), len(hits))
	fmt.Printf("%-12s %-28s %-5s %10s %10s %8s\n",
		"family", "model", "est", "est. bots", "lookups", "servers")
	for _, h := range hits {
		fmt.Printf("%-12s %-28s %-5s %10.1f %10d %8d\n",
			h.family, h.model, h.estimator, h.total, h.matched, h.servers)
	}
	return nil
}
