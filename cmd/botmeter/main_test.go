package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"botmeter/internal/botnet"
	"botmeter/internal/dga"
	"botmeter/internal/dnssim"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

// writeTestTrace simulates a small botnet and writes its observable trace.
func writeTestTrace(t *testing.T, path string) {
	t.Helper()
	net := dnssim.NewNetwork(dnssim.NetworkConfig{
		LocalServers: 1,
		PositiveTTL:  sim.Day,
		NegativeTTL:  2 * sim.Hour,
	})
	spec, err := dga.Lookup("newgoz")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := botnet.NewRunner(botnet.Config{
		Spec:          spec,
		Seed:          1,
		BotsPerServer: map[string]int{"local-00": 8},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(sim.Window{Start: 0, End: sim.Day}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	obs := net.Border.Observed()
	obs.Sort()
	if err := trace.WriteObservedCSV(f, obs); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{"-family", "newgoz", "-seed", "1", "-in", in}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEstimatorOverrides(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	for _, est := range []string{"MT", "MB", "MB-C", "NC", "MP"} {
		if err := run([]string{"-family", "newgoz", "-seed", "1", "-in", in, "-estimator", est}); err != nil {
			t.Errorf("estimator %s: %v", est, err)
		}
	}
}

func TestRunFlagsValidation(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("missing -family should fail")
	}
	if err := run([]string{"-family", "no-such-family", "-in", "/nonexistent"}); err == nil {
		t.Error("unknown family should fail")
	}
	if err := run([]string{"-family", "newgoz", "-in", "/nonexistent"}); err == nil {
		t.Error("missing input file should fail")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{"-family", "newgoz", "-in", in, "-estimator", "XX"}); err == nil {
		t.Error("unknown estimator should fail")
	}
}

func TestRunEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(in, []byte("t_ms,server,domain\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "newgoz", "-in", in}); err == nil {
		t.Error("empty trace should fail with a clear error")
	}
}

func TestRunWithDetectionAndOptions(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-d3-miss", "0.2", "-second-opinion", "-top", "1",
	}); err != nil {
		t.Fatalf("run with options: %v", err)
	}
}

func TestRunTriageAll(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in) // newGoZ traffic with seed 1
	if err := run([]string{"-family", "all", "-seed", "1", "-in", in}); err != nil {
		t.Fatalf("triage: %v", err)
	}
	// Triage with no input fails cleanly.
	if err := run([]string{"-family", "all", "-in", filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("missing input should fail")
	}
}

func TestRunWithPlanAndHTML(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	html := filepath.Join(dir, "report.html")
	if err := run([]string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-plan-capacity", "500", "-plan-hosts", "800", "-html", html,
	}); err != nil {
		t.Fatalf("run with plan: %v", err)
	}
	data, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BotMeter landscape") {
		t.Error("html report content missing")
	}
}
