package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunFollowOneShot(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-follow", "-json", "-top", "2",
	}); err != nil {
		t.Fatalf("follow: %v", err)
	}
}

func TestRunFollowWithListen(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-follow", "-listen", "127.0.0.1:0",
	}); err != nil {
		t.Fatalf("follow with /landscape endpoint: %v", err)
	}
}

// TestRunFollowCheckpointResume: a -follow run with -checkpoint-dir leaves
// restorable generations behind; a second run with -resume restores the
// newest one and replays only the tail, landing on the same landscape.
func TestRunFollowCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	ckDir := filepath.Join(dir, "ckpt")

	base := []string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-follow", "-checkpoint-dir", ckDir, "-checkpoint-every", "25",
	}
	if err := run(base); err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	gens, err := filepath.Glob(filepath.Join(ckDir, "checkpoint-*.ckpt"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no checkpoint generations written: %v, %v", gens, err)
	}
	if err := run(append(base, "-resume")); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// -resume against a directory with no checkpoints starts fresh rather
	// than failing: a first boot with recovery flags already set.
	empty := filepath.Join(dir, "empty-ckpt")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"-family", "newgoz", "-seed", "1", "-in", in,
		"-follow", "-checkpoint-dir", empty, "-resume",
	}); err != nil {
		t.Fatalf("resume with no checkpoint: %v", err)
	}
}

func TestRunFollowValidation(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "obs.csv")
	writeTestTrace(t, in)
	if err := run([]string{"-family", "newgoz", "-in", in, "-follow", "-format", "bind"}); err == nil {
		t.Error("-follow with bind input should fail (not streamable)")
	}
	if err := run([]string{"-family", "newgoz", "-follow", "-checkpoint-dir", dir}); err == nil {
		t.Error("-checkpoint-dir over stdin should fail (not replayable)")
	}
	if err := run([]string{"-family", "newgoz", "-in", in, "-follow", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint-dir should fail")
	}
}

// TestRunFollowWatch: -watch prints periodic status lines while streaming
// and the exit summary reports the ingest rate and final watermark lag.
func TestRunFollowWatch(t *testing.T) {
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdin, oldStderr := os.Stdin, os.Stderr
	os.Stdin, os.Stderr = inR, errW
	defer func() { os.Stdin, os.Stderr = oldStdin, oldStderr }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-family", "newgoz", "-seed", "1", "-follow", "-json",
			"-watch", "5ms", "-slo-freshness", "1h",
		})
	}()
	if _, err := io.WriteString(inW, "t_ms,server,domain\n1000,ns1,example.com\n2000,ns1,example.com\n"); err != nil {
		t.Fatal(err)
	}
	// Keep the stream open long enough for several -watch ticks to fire.
	time.Sleep(60 * time.Millisecond)
	inW.Close()
	runErr := <-done
	errW.Close()
	out, readErr := io.ReadAll(errR)
	os.Stdin, os.Stderr = oldStdin, oldStderr
	if readErr != nil {
		t.Fatal(readErr)
	}
	if runErr != nil {
		t.Fatalf("follow with -watch: %v", runErr)
	}
	s := string(out)
	if !strings.Contains(s, "rec/s") {
		t.Errorf("no -watch status line on stderr:\n%s", s)
	}
	if !strings.Contains(s, "records/s") || !strings.Contains(s, "final watermark lag") {
		t.Errorf("exit summary missing rate or watermark lag:\n%s", s)
	}
}

func TestRunFollowEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(in, []byte("t_ms,server,domain\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "newgoz", "-in", in, "-follow"}); err == nil {
		t.Error("empty streamed trace should fail with a clear error")
	}
}
