package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// followConfig carries the flags of the streaming mode.
type followConfig struct {
	in      string // input path ("" = stdin)
	format  string // csv or jsonl
	lenient bool
	live    bool          // keep tailing after EOF until interrupted
	listen  string        // diagnostic HTTP address ("" disables)
	reorder time.Duration // reorder window
	jsonOut bool
	topK    int
}

// runFollow is `botmeter -follow`: instead of materialising the trace and
// analysing it once, it feeds records to the online engine as they appear
// (optionally tailing a live capture), serves the evolving landscape over
// /landscape, and prints the final landscape when the input ends or the
// process is interrupted.
func runFollow(coreCfg core.Config, fc followConfig) error {
	if fc.format != "csv" && fc.format != "jsonl" {
		return fmt.Errorf("-follow supports csv and jsonl input, not %q", fc.format)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var reg *obs.Registry
	if fc.listen != "" {
		reg = obs.NewRegistry()
	}
	eng, err := stream.New(stream.Config{
		Core:          coreCfg,
		ReorderWindow: sim.FromDuration(fc.reorder),
		Registry:      reg,
	})
	if err != nil {
		return err
	}
	if fc.listen != "" {
		diag, err := obs.StartHTTP(fc.listen, obs.NewMux(obs.MuxConfig{
			Registry:  reg,
			Landscape: eng.LandscapeJSON,
		}))
		if err != nil {
			eng.Close() //nolint:errcheck // the listen error wins
			return err
		}
		defer diag.Close()
		fmt.Fprintf(os.Stderr, "botmeter: live landscape at http://%s/landscape\n", diag.Addr())
	}

	opt := stream.FollowOptions{Format: fc.format, Lenient: fc.lenient, Live: fc.live}
	var res trace.ReadResult
	if fc.in == "" {
		res, err = eng.Follow(ctx, os.Stdin, opt)
	} else {
		res, err = eng.FollowFile(ctx, fc.in, opt)
	}
	if err != nil {
		eng.Close() //nolint:errcheck // the read error wins
		return err
	}
	land, err := eng.Close()
	if err != nil {
		return err
	}
	stats := eng.Stats()
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "botmeter: skipped %d malformed line(s)\n", res.Skipped)
	}
	fmt.Fprintf(os.Stderr, "botmeter: streamed %d record(s): %d matched, %d late-dropped, %d epoch cell(s) closed\n",
		stats.Ingested, stats.Matched, stats.DroppedLate, stats.EpochsClosed)
	if stats.Ingested == 0 {
		return fmt.Errorf("no observations in input")
	}
	if fc.topK > 0 {
		land.Servers = land.Top(fc.topK)
	}
	if fc.jsonOut {
		return land.WriteJSON(os.Stdout)
	}
	fmt.Print(land.String())
	return nil
}
