package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/obs"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

// followConfig carries the flags of the streaming mode.
type followConfig struct {
	in      string // input path ("" = stdin)
	format  string // csv or jsonl
	lenient bool
	live    bool          // keep tailing after EOF until interrupted
	listen  string        // diagnostic HTTP address ("" disables)
	reorder time.Duration // reorder window
	jsonOut bool
	topK    int

	checkpointDir      string // crash-recovery checkpoint directory ("" disables)
	checkpointInterval time.Duration
	checkpointEvery    uint64
	resume             bool // restore the newest good checkpoint and replay from its offset

	watch        time.Duration // periodic status line cadence (0 disables)
	sloFreshness time.Duration // watermark-lag SLO (0 disables)
	sloLoss      float64       // lossy-ingest ratio SLO (0 disables)
	sloDisagree  float64       // estimator relative-spread SLO (0 disables)
}

// runFollow is `botmeter -follow`: instead of materialising the trace and
// analysing it once, it feeds records to the online engine as they appear
// (optionally tailing a live capture), serves the evolving landscape over
// /landscape, and prints the final landscape when the input ends or the
// process is interrupted.
func runFollow(coreCfg core.Config, fc followConfig) error {
	if fc.format != "csv" && fc.format != "jsonl" {
		return fmt.Errorf("-follow supports csv and jsonl input, not %q", fc.format)
	}
	if (fc.checkpointDir != "" || fc.resume) && fc.in == "" {
		return fmt.Errorf("-checkpoint-dir/-resume need a replayable input file (-in), not stdin")
	}
	if fc.resume && fc.checkpointDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var reg *obs.Registry
	if fc.listen != "" {
		reg = obs.NewRegistry()
	}
	streamCfg := stream.Config{
		Core:          coreCfg,
		ReorderWindow: sim.FromDuration(fc.reorder),
		Registry:      reg,
	}

	// Resume path: restore the newest good checkpoint (falling back past
	// torn/corrupt generations) and replay the input from its offset, so
	// every record is applied exactly once across the crash.
	var eng *stream.Engine
	var skip uint64
	var err error
	if fc.resume {
		state, info, loadErr := stream.LoadCheckpoint(fc.checkpointDir)
		if loadErr != nil {
			return loadErr
		}
		if info.Found {
			eng, err = stream.Restore(streamCfg, state)
			if err != nil {
				return err
			}
			skip = state.Source.Records
			fmt.Fprintf(os.Stderr, "botmeter: %s, replaying input from record %d\n", info, skip)
		} else {
			fmt.Fprintln(os.Stderr, "botmeter: no checkpoint found, starting fresh")
		}
	}
	if eng == nil {
		eng, err = stream.New(streamCfg)
		if err != nil {
			return err
		}
	}

	var ck *stream.Checkpointer
	if fc.checkpointDir != "" {
		ck, err = stream.NewCheckpointer(stream.CheckpointConfig{
			Dir:          fc.checkpointDir,
			Interval:     fc.checkpointInterval,
			EveryRecords: fc.checkpointEvery,
			Registry:     reg,
			SourceMeta: func() (string, int64) {
				fi, statErr := os.Stat(fc.in)
				if statErr != nil {
					return fc.in, 0
				}
				return fc.in, fi.Size()
			},
		})
		if err != nil {
			eng.Close() //nolint:errcheck // the checkpointer error wins
			return err
		}
	}
	// The observatory samples ingest health and landscape history in the
	// background. It is only worth running when something consumes it: a
	// -watch status line, a -listen endpoint, or an armed SLO rule.
	var obsy *stream.Observatory
	if fc.watch > 0 || fc.listen != "" || fc.sloFreshness > 0 || fc.sloLoss > 0 || fc.sloDisagree > 0 {
		obsy, err = stream.NewObservatory(stream.ObservatoryConfig{
			Engine:          eng,
			Checkpoints:     ck,
			Registry:        reg,
			FreshnessSLO:    fc.sloFreshness,
			LossRateSLO:     fc.sloLoss,
			DisagreementSLO: fc.sloDisagree,
		})
		if err != nil {
			eng.Close() //nolint:errcheck // the observatory error wins
			return err
		}
		obsy.Start()
		defer obsy.Stop()
	}
	if fc.listen != "" {
		muxCfg := obs.MuxConfig{
			Registry:  reg,
			Landscape: eng.LandscapeJSON,
		}
		if obsy != nil {
			muxCfg.Series = obsy.Store()
			muxCfg.History = obsy.HistoryJSON
			muxCfg.Health = obsy.Health
		}
		diag, err := obs.StartHTTP(fc.listen, obs.NewMux(muxCfg))
		if err != nil {
			eng.Close() //nolint:errcheck // the listen error wins
			return err
		}
		defer diag.Close()
		fmt.Fprintf(os.Stderr, "botmeter: live landscape at http://%s/landscape\n", diag.Addr())
	}
	if fc.watch > 0 && obsy != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			tick := time.NewTicker(fc.watch)
			defer tick.Stop()
			for {
				select {
				case <-watchDone:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "botmeter: %s\n", obsy.StatusLine())
				}
			}
		}()
	}

	opt := stream.FollowOptions{
		Format:      fc.format,
		Lenient:     fc.lenient,
		Live:        fc.live,
		SkipRecords: skip,
		Checkpoint:  ck,
	}
	started := time.Now()
	var res trace.ReadResult
	if fc.in == "" {
		res, err = eng.Follow(ctx, os.Stdin, opt)
	} else {
		res, err = eng.FollowFile(ctx, fc.in, opt)
	}
	elapsed := time.Since(started)
	finalLag := eng.WatermarkLagSeconds()
	if err != nil {
		eng.Close() //nolint:errcheck // the read error wins
		return err
	}
	if ck != nil {
		if err := ck.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "botmeter: last checkpoint failed: %v\n", err)
		}
	}
	land, err := eng.Close()
	if err != nil {
		return err
	}
	stats := eng.Stats()
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "botmeter: skipped %d malformed line(s)\n", res.Skipped)
	}
	fmt.Fprintf(os.Stderr, "botmeter: streamed %d record(s): %d matched, %d late-dropped, %d reorder-evicted, %d epoch cell(s) closed, %s, final watermark lag %s\n",
		stats.Ingested, stats.Matched, stats.DroppedLate, stats.ReorderEvictions, stats.EpochsClosed,
		formatRate(stats.Ingested, elapsed), formatLag(finalLag))
	if stats.DroppedLate+stats.ReorderEvictions > 0 {
		fmt.Fprintf(os.Stderr, "botmeter: WARNING: %d record(s) lost or force-emitted out of order (late drops + reorder evictions) — the landscape may undercount; consider a larger -reorder-window\n",
			stats.DroppedLate+stats.ReorderEvictions)
	}
	if stats.Ingested == 0 {
		return fmt.Errorf("no observations in input")
	}
	if fc.topK > 0 {
		land.Servers = land.Top(fc.topK)
	}
	if fc.jsonOut {
		return land.WriteJSON(os.Stdout)
	}
	fmt.Print(land.String())
	return nil
}

// formatRate renders an end-of-run ingest rate, guarding the zero-length
// runs that one-shot tests produce.
func formatRate(ingested uint64, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "0 records/s"
	}
	return fmt.Sprintf("%.0f records/s", float64(ingested)/elapsed.Seconds())
}

// formatLag renders the final watermark lag. Replays of simulated traces
// carry virtual timestamps that are arbitrarily far from the wall clock,
// so an absurd lag is reported as such instead of as a huge number.
func formatLag(seconds float64) string {
	if seconds > 48*60*60 {
		return "n/a (virtual timestamps)"
	}
	return fmt.Sprintf("%.1fs", seconds)
}
