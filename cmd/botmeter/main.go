// Command botmeter charts the DGA-botnet landscape of a network from a
// border-server DNS trace: it matches lookups against a target family's
// domains, selects the analytical model fitting the family's taxonomy cell
// (MP for uniform barrels, MB for randomcut, MT otherwise), estimates the
// active bot population behind every forwarding server and prints the
// remediation-priority ranking.
//
// Usage:
//
//	botmeter -family newgoz -seed 1 -in observed.csv
//	botmeter -family murofet -seed 1 -in obs.jsonl -format jsonl -estimator MT
//	dgasim -family newgoz -bots 64 -out obs.csv && botmeter -family newgoz -in obs.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"botmeter/internal/core"
	"botmeter/internal/d3"
	"botmeter/internal/dga"
	"botmeter/internal/estimators"
	"botmeter/internal/obs"
	"botmeter/internal/remediation"
	"botmeter/internal/sim"
	"botmeter/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "botmeter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("botmeter", flag.ContinueOnError)
	family := fs.String("family", "", "target DGA family preset (required)")
	in := fs.String("in", "", "observable dataset path (default stdin)")
	format := fs.String("format", "csv", "input format: csv, jsonl, or bind (BIND querylog)")
	lenient := fs.Bool("lenient", false, "skip malformed input lines (torn tails, corrupt records) instead of failing")
	seed := fs.Uint64("seed", 1, "DGA seed used to reconstruct pools")
	estName := fs.String("estimator", "", "force estimator: MT, MP, MB, MB-C, NC (default: by taxonomy)")
	negTTL := fs.Duration("neg-ttl", 2*60*60*1e9, "negative cache TTL δl")
	granularity := fs.Duration("granularity", 0, "vantage timestamp granularity")
	missRate := fs.Float64("d3-miss", 0, "D³ detection miss rate in [0,1)")
	second := fs.Bool("second-opinion", false, "also run the Timing estimator per server")
	topK := fs.Int("top", 0, "print only the top-K servers (0 = all)")
	htmlOut := fs.String("html", "", "also write a self-contained HTML report to this path")
	jsonOut := fs.Bool("json", false, "print the landscape as JSON instead of text")
	planCapacity := fs.Float64("plan-capacity", 0, "hosts the response team can vet per day; > 0 prints a remediation schedule")
	planHosts := fs.Int("plan-hosts", 1000, "assumed hosts behind each local server for the schedule")
	verbose := fs.Bool("verbose", false, "print a per-stage timing summary (trace read, matching, estimation) to stderr")
	workers := fs.Int("workers", 0, "per-server estimation workers (0 = one per CPU capped at 16, 1 = sequential); any value yields identical landscapes")
	follow := fs.Bool("follow", false, "stream the input through the online engine instead of batch analysis; prints the final landscape at EOF or on interrupt")
	followLive := fs.Bool("live", false, "with -follow: keep tailing the input after EOF (live capture) until interrupted")
	followListen := fs.String("listen", "", "with -follow: serve the evolving landscape at /landscape (plus /metrics, /debug/pprof) on this address")
	reorderWindow := fs.Duration("reorder-window", 2*time.Second, "with -follow: how far out of order timestamps may arrive and still be re-sequenced")
	checkpointDir := fs.String("checkpoint-dir", "", "with -follow: write crash-recovery checkpoints of the engine state to this directory")
	checkpointInterval := fs.Duration("checkpoint-interval", 30*time.Second, "with -checkpoint-dir: wall-clock checkpoint cadence (0 disables the time trigger)")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "with -checkpoint-dir: also checkpoint every N input records (0 disables the count trigger)")
	resume := fs.Bool("resume", false, "with -checkpoint-dir: restore the newest good checkpoint and replay the input from its offset instead of starting fresh")
	watch := fs.Duration("watch", 0, "with -follow: print a periodic status line (watermark lag, ingest rate, SLO state) to stderr at this cadence (0 disables)")
	sloFreshness := fs.Duration("slo-freshness", 0, "with -follow: flag the run degraded when any shard's watermark lags the wall clock by more than this (0 disables)")
	sloLoss := fs.Float64("slo-loss", 0, "with -follow: flag the run degraded when the lossy-ingest ratio exceeds this (0 disables)")
	sloDisagree := fs.Float64("slo-disagreement", 0, "with -follow: flag the run degraded when the estimators' relative spread exceeds this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" {
		return fmt.Errorf("-family is required (try: all, %s)", strings.Join(dga.FamilyNames(), ", "))
	}
	var stages *obs.StageSet
	if *verbose {
		stages = obs.NewStageSet()
		defer func() {
			if table := stages.Table(); table != "" {
				fmt.Fprint(os.Stderr, "\ntimings\n"+table)
			}
		}()
	}
	if strings.EqualFold(*family, "all") {
		return runTriage(*in, *format, *lenient, *seed, sim.FromDuration(*negTTL), sim.FromDuration(*granularity), stages)
	}
	spec, err := dga.Lookup(*family)
	if err != nil {
		return err
	}

	var est estimators.Estimator
	switch strings.ToUpper(*estName) {
	case "":
	case "MT":
		est = estimators.NewTiming()
	case "MP":
		est = estimators.NewPoisson()
	case "MB":
		est = estimators.NewBernoulli()
	case "MB-C":
		est = estimators.NewCoverage()
	case "NC":
		est = estimators.NewNaive()
	default:
		return fmt.Errorf("unknown estimator %q", *estName)
	}

	var detection *d3.Window
	if *missRate > 0 {
		detection = &d3.Window{MissRate: *missRate, Seed: *seed ^ 0xd3}
	}

	if *follow {
		return runFollow(core.Config{
			Family:        spec,
			Seed:          *seed,
			NegativeTTL:   sim.FromDuration(*negTTL),
			Granularity:   sim.FromDuration(*granularity),
			Estimator:     est,
			Detection:     detection,
			SecondOpinion: *second,
		}, followConfig{
			in:      *in,
			format:  *format,
			lenient: *lenient,
			live:    *followLive,
			listen:  *followListen,
			reorder: *reorderWindow,
			jsonOut: *jsonOut,
			topK:    *topK,

			checkpointDir:      *checkpointDir,
			checkpointInterval: *checkpointInterval,
			checkpointEvery:    *checkpointEvery,
			resume:             *resume,

			watch:        *watch,
			sloFreshness: *sloFreshness,
			sloLoss:      *sloLoss,
			sloDisagree:  *sloDisagree,
		})
	}

	readStage := stages.Start("read-trace")
	observed, err := readObserved(*in, *format, *lenient)
	readStage.End()
	if err != nil {
		return err
	}
	if len(observed) == 0 {
		return fmt.Errorf("no observations in input")
	}
	observed.Sort()

	selectStage := stages.Start("select-model")
	bm, err := core.New(core.Config{
		Family:        spec,
		Seed:          *seed,
		NegativeTTL:   sim.FromDuration(*negTTL),
		Granularity:   sim.FromDuration(*granularity),
		Estimator:     est,
		Detection:     detection,
		SecondOpinion: *second,
		Workers:       *workers,
		Stages:        stages,
	})
	selectStage.End()
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "botmeter: family %s (%s), estimator %s, %d observation(s)\n",
			spec.Name, spec.ModelName(), bm.EstimatorName(), len(observed))
	}
	// Analysis window: epoch-aligned around the data.
	start := (observed[0].T / sim.Day) * sim.Day
	end := (observed[len(observed)-1].T/sim.Day + 1) * sim.Day
	land, err := bm.Analyze(observed, sim.Window{Start: start, End: end})
	if err != nil {
		return err
	}
	if *topK > 0 {
		land.Servers = land.Top(*topK)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := (core.HTMLReport{Landscape: land}).WriteHTML(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote HTML report to %s\n", *htmlOut)
	}
	if *jsonOut {
		if err := land.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Print(land.String())
	}
	if *planCapacity > 0 {
		sites, err := remediation.FromLandscape(land, nil, *planHosts)
		if err != nil {
			return err
		}
		plan, err := remediation.Build(sites, *planCapacity)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(plan.String())
	}
	if *second {
		fmt.Printf("\n%-12s %12s %12s\n", "server", spec.Name+" ("+land.Estimator+")", "MT opinion")
		for _, s := range land.Servers {
			fmt.Printf("%-12s %12.1f %12.1f\n", s.Server, s.Population, s.SecondOpinion)
		}
	}
	return nil
}

func readObserved(path, format string, lenient bool) (trace.Observed, error) {
	r := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	opt := trace.ReadOptions{Lenient: lenient}
	var (
		obs trace.Observed
		res trace.ReadResult
		err error
	)
	switch format {
	case "jsonl":
		obs, res, err = trace.ReadObservedJSONLOpts(r, opt)
	case "bind":
		obs, err = trace.ReadBINDLog(r, trace.BINDLogOptions{})
	default:
		obs, res, err = trace.ReadObservedCSVOpts(r, opt)
	}
	if err != nil {
		return nil, err
	}
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "botmeter: skipped %d malformed line(s) in %s input\n", res.Skipped, format)
	}
	return obs, nil
}
