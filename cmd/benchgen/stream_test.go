package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunStreamArtifacts: the checkpoint-overhead pair must both run, and
// their -bench-json records must land as separate series (the artifact
// name is part of the dedup key, so "stream" and "stream-checkpoint" never
// collapse into one record).
func TestRunStreamArtifacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-artifact", "stream", "-scale", "0.5", "-bench-json", path}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if err := run([]string{"-artifact", "stream-checkpoint", "-scale", "0.5", "-bench-json", path}); err != nil {
		t.Fatalf("stream-checkpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want one record per artifact, got %d: %+v", len(recs), recs)
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		seen[rec.Artifact] = true
		if rec.Trials == 0 || rec.NSPerTrial <= 0 {
			t.Errorf("%s: empty measurement: %+v", rec.Artifact, rec)
		}
	}
	if !seen["stream"] || !seen["stream-checkpoint"] {
		t.Errorf("artifacts recorded = %v", seen)
	}
}
