package main

import (
	"fmt"
	"os"

	"botmeter/internal/core"
	"botmeter/internal/dga"
	"botmeter/internal/experiments"
	"botmeter/internal/sim"
	"botmeter/internal/stream"
	"botmeter/internal/trace"
)

const streamBenchEpochLen = sim.Hour

// streamBenchTrace builds the deterministic observable trace the streaming
// benchmark replays: per epoch and server, a few bot activations drawing
// real barrels from the family's rotating pool, plus unmatched noise
// lookups, sorted into canonical timestamp order.
func streamBenchTrace(spec dga.Spec, seed uint64, servers, epochs, activations int) (trace.Observed, error) {
	var out trace.Observed
	for ep := 0; ep < epochs; ep++ {
		pool := spec.Pool.PoolFor(seed, ep)
		if pool.Size() == 0 {
			return nil, fmt.Errorf("stream bench: epoch %d has an empty pool", ep)
		}
		epochStart := sim.Time(ep) * streamBenchEpochLen
		margin := streamBenchEpochLen - spec.MaxDuration()
		if margin <= 0 {
			return nil, fmt.Errorf("stream bench: activation duration %v exceeds the epoch", spec.MaxDuration())
		}
		for sv := 0; sv < servers; sv++ {
			name := fmt.Sprintf("local-%d", sv)
			rng := sim.SplitFrom(seed, uint64(ep)*1_000_003+uint64(sv))
			for a := 0; a < activations; a++ {
				start := epochStart + sim.Time(rng.Int64N(int64(margin)))
				positions := dga.ExecuteBarrel(pool, spec.Barrel.Barrel(pool, spec.ThetaQ, rng))
				t := start
				for _, pos := range positions {
					out = append(out, trace.ObservedRecord{T: t, Server: name, Domain: pool.Domains[pos]})
					t += spec.Interval(rng)
				}
			}
			for n := 0; n < 5; n++ {
				out = append(out, trace.ObservedRecord{
					T:      epochStart + sim.Time(rng.Int64N(int64(streamBenchEpochLen))),
					Server: name,
					Domain: fmt.Sprintf("noise-%d-%d-%d.example", ep, sv, n),
				})
			}
		}
	}
	out.Sort()
	return out, nil
}

// streamBench replays the synthetic trace through the streaming engine,
// optionally checkpointing every checkpointEvery records to a scratch
// directory. Every record counts as one "trial" on experiments_trials_total,
// so a -bench-json record's ns_per_trial reads as nanoseconds per streamed
// record — running the "stream" and "stream-checkpoint" artifacts
// back-to-back into the same file yields the checkpoint overhead series
// (off vs on) on comparable terms.
func streamBench(g genOpts, checkpoint bool) error {
	const (
		servers         = 16
		epochs          = 6
		activations     = 3
		checkpointEvery = 2000
	)
	spec := experiments.ScaledSpec(dga.Murofet(), 0.1*g.scale)
	delivered, err := streamBenchTrace(spec, g.seed, servers, epochs, activations)
	if err != nil {
		return err
	}
	eng, err := stream.New(stream.Config{
		Core:          core.Config{Family: spec, Seed: g.seed, EpochLen: streamBenchEpochLen},
		Shards:        g.workers,
		ReorderWindow: 5 * sim.Second,
	})
	if err != nil {
		return err
	}
	var ck *stream.Checkpointer
	if checkpoint {
		dir, err := os.MkdirTemp("", "benchgen-checkpoint-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ck, err = stream.NewCheckpointer(stream.CheckpointConfig{Dir: dir, EveryRecords: checkpointEvery})
		if err != nil {
			return err
		}
	}
	for i, rec := range delivered {
		if err := eng.Observe(rec); err != nil {
			return err
		}
		if ck != nil {
			if err := ck.Maybe(eng, uint64(i+1)); err != nil {
				return err
			}
		}
	}
	if ck != nil {
		if err := ck.Close(); err != nil {
			return err
		}
	}
	land, err := eng.Close()
	if err != nil {
		return err
	}
	if g.reg != nil {
		g.reg.Counter("experiments_trials_total").Add(uint64(len(delivered)))
	}
	stats := eng.Stats()
	fmt.Printf("stream bench: %d record(s), %d matched, %d server(s), total population %.1f\n",
		stats.Ingested, stats.Matched, len(land.Servers), land.Total)
	if ck != nil {
		cs := ck.Stats()
		fmt.Printf("checkpointing on: every %d record(s), %d generation(s) written (%d skipped, %d errors), last %d bytes in %v\n",
			checkpointEvery, cs.Written, cs.Skipped, cs.Errors, cs.LastBytes, cs.LastDuration)
	} else {
		fmt.Println("checkpointing off")
	}
	return nil
}
