// Command benchgen regenerates the paper's evaluation artifacts: the five
// Figure 6 panels, Figure 7, Table I and Table II. Text renderings go to
// stdout; CSVs are written next to -outdir when set.
//
// Usage:
//
//	benchgen -artifact all                # everything (minutes)
//	benchgen -artifact fig6a -trials 10   # one panel
//	benchgen -artifact fig7 -days 60      # enterprise evaluation
//	benchgen -artifact table1             # parameter table (instant)
//	benchgen -artifact fig7 -chart        # ASCII population chart
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"botmeter/internal/experiments"
	"botmeter/internal/obs"
	"botmeter/internal/parallel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "artifact to regenerate: all, table1, fig6, fig6a..fig6e, fig7, table2, reactivation, taxonomy, missing, chaos, stream, stream-checkpoint")
	trials := fs.Int("trials", 10, "trials per Figure 6 point")
	population := fs.Int("population", 64, "default bot population N")
	days := fs.Int("days", 60, "enterprise trace length for fig7/table2")
	seed := fs.Uint64("seed", 2016, "experiment seed")
	scale := fs.Float64("scale", 1, "DGA pool scale factor (1 = Table I parameters)")
	outdir := fs.String("outdir", "", "directory for CSV outputs (optional)")
	chart := fs.Bool("chart", false, "render ASCII charts for fig7 series")
	models := fs.String("models", "", "comma-separated DGA models for fig6 (default all)")
	timings := fs.Bool("timings", false, "print a per-stage wall/alloc timing table to stderr after the artifact")
	workers := fs.Int("workers", 0, "parallel workers for trial loops (0 = one per CPU, 1 = sequential); any value renders identical artifacts")
	benchJSON := fs.String("bench-json", "", "append a benchmark record (wall time, ns/trial, allocs/trial, workers) for this invocation to the given JSON file")
	benchNote := fs.String("bench-note", "", "free-form comment stored on the -bench-json record (e.g. machine caveats)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var stages *obs.StageSet
	if *timings {
		stages = obs.NewStageSet()
		defer func() {
			if stats := stages.SortedStats(); len(stats) > 0 {
				fmt.Fprint(os.Stderr, "\npipeline timings\n"+stages.Table())
			}
		}()
	}
	var reg *obs.Registry
	if *benchJSON != "" {
		reg = obs.NewRegistry()
	}

	f6 := experiments.Fig6Config{
		Trials:     *trials,
		Population: *population,
		Seed:       *seed,
		Scale:      *scale,
		Workers:    *workers,
		Stages:     stages,
		Obs:        reg,
	}
	if *models != "" {
		f6.Models = strings.Split(*models, ",")
	}
	f7 := experiments.Fig7Config{Days: *days, Seed: *seed, Scale: *scale, Workers: *workers, Stages: stages, Obs: reg}

	g := genOpts{
		artifact: *artifact, f6: f6, f7: f7,
		trials: *trials, population: *population, days: *days,
		seed: *seed, scale: *scale, workers: *workers,
		reg: reg, stages: stages, outdir: *outdir, chart: *chart,
	}
	if *benchJSON == "" {
		return generate(g)
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if err := generate(g); err != nil {
		return err
	}
	return appendBenchRecord(*benchJSON, *artifact, *workers, *benchNote, reg, t0, m0)
}

// genOpts carries one artifact invocation's settings.
type genOpts struct {
	artifact   string
	f6         experiments.Fig6Config
	f7         experiments.Fig7Config
	trials     int
	population int
	days       int
	seed       uint64
	scale      float64
	workers    int
	reg        *obs.Registry
	stages     *obs.StageSet
	outdir     string
	chart      bool
}

func generate(g genOpts) error {
	panels := map[string]func(experiments.Fig6Config) ([]experiments.Fig6Point, error){
		"fig6a": experiments.Figure6a,
		"fig6b": experiments.Figure6b,
		"fig6c": experiments.Figure6c,
		"fig6d": experiments.Figure6d,
		"fig6e": experiments.Figure6e,
	}

	switch g.artifact {
	case "table1":
		fmt.Print(experiments.RenderTableI())
		return nil
	case "fig6a", "fig6b", "fig6c", "fig6d", "fig6e":
		pts, err := panels[g.artifact](g.f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		return writeFig6CSV(g.outdir, g.artifact, pts)
	case "fig6":
		pts, err := experiments.Figure6(g.f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		return writeFig6CSV(g.outdir, "fig6", pts)
	case "missing":
		pts, err := experiments.MissingObservations(experiments.MissingObsConfig{
			Trials: g.trials, Population: g.population, Seed: g.seed, Scale: g.scale,
			Workers: g.workers, Obs: g.reg,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderMissingObs(pts))
		return nil
	case "chaos":
		pts, err := experiments.ChaosSweep(experiments.ChaosConfig{
			Trials: g.trials, Population: g.population, Seed: g.seed, Scale: g.scale,
			Workers: g.workers, Stages: g.stages, Obs: g.reg,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderChaos(pts))
		return nil
	case "taxonomy":
		cells, err := experiments.TaxonomyGrid(experiments.TaxonomyGridConfig{
			Trials: g.trials, Seed: g.seed, Workers: g.workers, Obs: g.reg,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTaxonomyGrid(cells))
		return nil
	case "reactivation":
		rows, err := experiments.Reactivation(experiments.ReactivationConfig{
			Days: g.days, Seed: g.seed, Workers: g.workers, Obs: g.reg,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderReactivation(rows))
		return nil
	case "stream", "stream-checkpoint":
		return streamBench(g, g.artifact == "stream-checkpoint")
	case "fig7", "table2":
		series, err := experiments.Figure7(g.f7)
		if err != nil {
			return err
		}
		if g.artifact == "fig7" {
			fmt.Print(experiments.RenderFig7(series))
			if g.chart {
				for _, s := range series {
					fmt.Println(experiments.ASCIIChart(s, 60))
				}
			}
			if err := writeFig7CSV(g.outdir, series); err != nil {
				return err
			}
		}
		fmt.Print(experiments.RenderTableII(experiments.TableII(series)))
		return nil
	case "all":
		fmt.Print(experiments.RenderTableI())
		fmt.Println()
		pts, err := experiments.Figure6(g.f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		if err := writeFig6CSV(g.outdir, "fig6", pts); err != nil {
			return err
		}
		series, err := experiments.Figure7(g.f7)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig7(series))
		fmt.Print(experiments.RenderTableII(experiments.TableII(series)))
		return writeFig7CSV(g.outdir, series)
	default:
		return fmt.Errorf("unknown artifact %q", g.artifact)
	}
}

// BenchRecord is one -bench-json entry: the wall-clock and allocator cost
// of regenerating an artifact at a given worker count. Trials is read from
// the run's experiments_trials_total counter (one trial = one simulated
// run or one analysed day); AllocsPerTrial divides the process-wide
// allocation delta across trials, so it is an attribution, exact at
// workers=1 and shared-cost-inclusive otherwise.
type BenchRecord struct {
	Artifact       string  `json:"artifact"`
	Workers        int     `json:"workers"`
	ResolvedW      int     `json:"resolved_workers"`
	CPUs           int     `json:"cpus"`
	GoVersion      string  `json:"go_version"`
	Trials         uint64  `json:"trials"`
	WallNS         int64   `json:"wall_ns"`
	NSPerTrial     int64   `json:"ns_per_trial"`
	AllocsPerTrial uint64  `json:"allocs_per_trial"`
	AllocMB        float64 `json:"alloc_mb"`
	RecordedAt     string  `json:"recorded_at"`
	// Comment carries free-form measurement caveats (e.g. "1-core CI
	// container: engine overhead dominates, not speedup").
	Comment string `json:"comment,omitempty"`
}

// canonicalKey is a record's identity within one measurement batch: the
// worker flag is resolved before keying, so `-workers 0` and `-workers 1` on
// a 1-core host (both resolving to one worker) produce ONE canonical record
// instead of two redundant trajectory entries.
func (r BenchRecord) canonicalKey() string {
	return fmt.Sprintf("%s|w%d|c%d|%s|t%d", r.Artifact, r.ResolvedW, r.CPUs, r.GoVersion, r.Trials)
}

// appendBenchRecord measures the run just completed and appends it to the
// JSON array at path (created when absent). Emission is deduplicated by
// resolved worker count: when the file's trailing record carries the same
// canonical key (artifact, resolved_workers, cpus, go version, trials), the
// new measurement replaces it rather than appending — back-to-back
// `-workers 0` / `-workers 1` runs therefore leave one canonical record,
// while historical (non-adjacent) trajectory entries are preserved.
func appendBenchRecord(path, artifact string, workers int, note string, reg *obs.Registry, t0 time.Time, m0 runtime.MemStats) error {
	wall := time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	trials := reg.CounterValue("experiments_trials_total")
	rec := BenchRecord{
		Artifact:   artifact,
		Workers:    workers,
		ResolvedW:  parallel.Workers(workers),
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Trials:     trials,
		WallNS:     wall.Nanoseconds(),
		AllocMB:    float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20),
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Comment:    note,
	}
	if trials > 0 {
		rec.NSPerTrial = wall.Nanoseconds() / int64(trials)
		rec.AllocsPerTrial = (m1.Mallocs - m0.Mallocs) / trials
	}
	var records []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("bench-json %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if n := len(records); n > 0 && records[n-1].canonicalKey() == rec.canonicalKey() {
		// Same batch, same resolved shape (e.g. -workers 0 after -workers 1
		// on a 1-core host): latest measurement wins, one canonical record.
		records[n-1] = rec
	} else {
		records = append(records, rec)
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func writeFig6CSV(dir, name string, pts []experiments.Fig6Point) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteFig6CSV(f, pts); err != nil {
		return err
	}
	return f.Close()
}

func writeFig7CSV(dir string, series []experiments.Fig7Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteFig7CSV(f, series); err != nil {
		return err
	}
	return f.Close()
}
