// Command benchgen regenerates the paper's evaluation artifacts: the five
// Figure 6 panels, Figure 7, Table I and Table II. Text renderings go to
// stdout; CSVs are written next to -outdir when set.
//
// Usage:
//
//	benchgen -artifact all                # everything (minutes)
//	benchgen -artifact fig6a -trials 10   # one panel
//	benchgen -artifact fig7 -days 60      # enterprise evaluation
//	benchgen -artifact table1             # parameter table (instant)
//	benchgen -artifact fig7 -chart        # ASCII population chart
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"botmeter/internal/experiments"
	"botmeter/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "artifact to regenerate: all, table1, fig6, fig6a..fig6e, fig7, table2, reactivation, taxonomy, missing, chaos")
	trials := fs.Int("trials", 10, "trials per Figure 6 point")
	population := fs.Int("population", 64, "default bot population N")
	days := fs.Int("days", 60, "enterprise trace length for fig7/table2")
	seed := fs.Uint64("seed", 2016, "experiment seed")
	scale := fs.Float64("scale", 1, "DGA pool scale factor (1 = Table I parameters)")
	outdir := fs.String("outdir", "", "directory for CSV outputs (optional)")
	chart := fs.Bool("chart", false, "render ASCII charts for fig7 series")
	models := fs.String("models", "", "comma-separated DGA models for fig6 (default all)")
	timings := fs.Bool("timings", false, "print a per-stage wall/alloc timing table to stderr after the artifact")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var stages *obs.StageSet
	if *timings {
		stages = obs.NewStageSet()
		defer func() {
			if stats := stages.SortedStats(); len(stats) > 0 {
				fmt.Fprint(os.Stderr, "\npipeline timings\n"+stages.Table())
			}
		}()
	}

	f6 := experiments.Fig6Config{
		Trials:     *trials,
		Population: *population,
		Seed:       *seed,
		Scale:      *scale,
		Stages:     stages,
	}
	if *models != "" {
		f6.Models = strings.Split(*models, ",")
	}
	f7 := experiments.Fig7Config{Days: *days, Seed: *seed, Scale: *scale, Stages: stages}

	panels := map[string]func(experiments.Fig6Config) ([]experiments.Fig6Point, error){
		"fig6a": experiments.Figure6a,
		"fig6b": experiments.Figure6b,
		"fig6c": experiments.Figure6c,
		"fig6d": experiments.Figure6d,
		"fig6e": experiments.Figure6e,
	}

	switch *artifact {
	case "table1":
		fmt.Print(experiments.RenderTableI())
		return nil
	case "fig6a", "fig6b", "fig6c", "fig6d", "fig6e":
		pts, err := panels[*artifact](f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		return writeFig6CSV(*outdir, *artifact, pts)
	case "fig6":
		pts, err := experiments.Figure6(f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		return writeFig6CSV(*outdir, "fig6", pts)
	case "missing":
		pts, err := experiments.MissingObservations(experiments.MissingObsConfig{
			Trials: *trials, Population: *population, Seed: *seed, Scale: *scale,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderMissingObs(pts))
		return nil
	case "chaos":
		pts, err := experiments.ChaosSweep(experiments.ChaosConfig{
			Trials: *trials, Population: *population, Seed: *seed, Scale: *scale,
			Stages: stages,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderChaos(pts))
		return nil
	case "taxonomy":
		cells, err := experiments.TaxonomyGrid(experiments.TaxonomyGridConfig{
			Trials: *trials, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTaxonomyGrid(cells))
		return nil
	case "reactivation":
		rows, err := experiments.Reactivation(experiments.ReactivationConfig{
			Days: *days, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderReactivation(rows))
		return nil
	case "fig7", "table2":
		series, err := experiments.Figure7(f7)
		if err != nil {
			return err
		}
		if *artifact == "fig7" {
			fmt.Print(experiments.RenderFig7(series))
			if *chart {
				for _, s := range series {
					fmt.Println(experiments.ASCIIChart(s, 60))
				}
			}
			if err := writeFig7CSV(*outdir, series); err != nil {
				return err
			}
		}
		fmt.Print(experiments.RenderTableII(experiments.TableII(series)))
		return nil
	case "all":
		fmt.Print(experiments.RenderTableI())
		fmt.Println()
		pts, err := experiments.Figure6(f6)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		if err := writeFig6CSV(*outdir, "fig6", pts); err != nil {
			return err
		}
		series, err := experiments.Figure7(f7)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig7(series))
		fmt.Print(experiments.RenderTableII(experiments.TableII(series)))
		return writeFig7CSV(*outdir, series)
	default:
		return fmt.Errorf("unknown artifact %q", *artifact)
	}
}

func writeFig6CSV(dir, name string, pts []experiments.Fig6Point) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteFig6CSV(f, pts); err != nil {
		return err
	}
	return f.Close()
}

func writeFig7CSV(dir string, series []experiments.Fig7Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteFig7CSV(f, series); err != nil {
		return err
	}
	return f.Close()
}
