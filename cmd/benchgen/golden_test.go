package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"botmeter/internal/experiments"
)

// update rewrites the golden hashes. Regenerate with:
//
//	go test ./cmd/benchgen -run TestGoldenArtifacts -update
var update = flag.Bool("update", false, "rewrite testdata/golden.json with current artifact hashes")

// Golden parameters: small enough for CI, fixed forever. Changing any of
// these (or any code on the artifact path) legitimately changes the hashes
// — rerun with -update and review the diff of the rendered artifacts, not
// just the hashes.
const (
	goldenSeed       = 2016
	goldenScale      = 0.05
	goldenTrials     = 2
	goldenPopulation = 16
	goldenDays       = 4
)

// goldenFile is the checked-in artifact→SHA-256 map.
type goldenFile struct {
	Note   string            `json:"note"`
	Hashes map[string]string `json:"hashes"`
}

// renderArtifacts produces the text renderings of every pinned artifact at
// the golden parameters: Table I, the five Figure 6 panels, Figure 7 and
// Table II. Workers is left at the default deliberately: artifacts are
// required to be identical at any parallelism, so a scheduling-dependent
// result shows up here as a hash flake.
func renderArtifacts(t *testing.T) map[string]string {
	t.Helper()
	f6 := experiments.Fig6Config{
		Trials:     goldenTrials,
		Population: goldenPopulation,
		Seed:       goldenSeed,
		Scale:      goldenScale,
	}
	out := map[string]string{"table1": experiments.RenderTableI()}
	panels := map[string]func(experiments.Fig6Config) ([]experiments.Fig6Point, error){
		"fig6a": experiments.Figure6a,
		"fig6b": experiments.Figure6b,
		"fig6c": experiments.Figure6c,
		"fig6d": experiments.Figure6d,
		"fig6e": experiments.Figure6e,
	}
	for name, panel := range panels {
		pts, err := panel(f6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = experiments.RenderFig6(pts)
	}
	series, err := experiments.Figure7(experiments.Fig7Config{
		Days: goldenDays, Seed: goldenSeed, Scale: goldenScale,
	})
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	out["fig7"] = experiments.RenderFig7(series)
	out["table2"] = experiments.RenderTableII(experiments.TableII(series))
	return out
}

// TestGoldenArtifacts pins SHA-256 hashes of the rendered evaluation
// artifacts at fixed seeds. The experiment pipeline is deterministic end to
// end (seeded RNG splitting, deterministic parallel trial collection), so
// any hash drift is a behaviour change on the simulate→match→estimate
// path that must be either fixed or consciously re-pinned with -update.
func TestGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden artifacts are a long test")
	}
	rendered := renderArtifacts(t)
	hashes := make(map[string]string, len(rendered))
	for name, text := range rendered {
		sum := sha256.Sum256([]byte(text))
		hashes[name] = hex.EncodeToString(sum[:])
	}
	path := filepath.Join("testdata", "golden.json")
	if *update {
		gf := goldenFile{
			Note:   "SHA-256 of benchgen text artifacts at seed 2016, scale 0.05, trials 2, population 16, days 4. Regenerate: go test ./cmd/benchgen -run TestGoldenArtifacts -update",
			Hashes: hashes,
		}
		data, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-pinned %d artifact hashes in %s", len(hashes), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (rerun with -update to create): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	names := make([]string, 0, len(hashes))
	for name := range hashes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wantHash, ok := want.Hashes[name]
		if !ok {
			t.Errorf("%s: missing from golden file (rerun with -update)", name)
			continue
		}
		if hashes[name] != wantHash {
			t.Errorf("%s: hash drift\n  pinned  %s\n  current %s\nartifact now renders as:\n%s",
				name, wantHash, hashes[name], rendered[name])
		}
	}
	for name := range want.Hashes {
		if _, ok := hashes[name]; !ok {
			t.Errorf("golden file pins unknown artifact %q", name)
		}
	}
}

// TestGoldenArtifactsStable renders the artifacts twice in-process and
// requires byte identity — the determinism premise behind hash pinning,
// checked without any filesystem state.
func TestGoldenArtifactsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden artifacts are a long test")
	}
	a, b := renderArtifacts(t), renderArtifacts(t)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("%s: two renders differ", name)
		}
	}
}
