package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"botmeter/internal/parallel"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-artifact", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6aTiny(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-artifact", "fig6a", "-trials", "1", "-scale", "0.05",
		"-models", "AU", "-outdir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6a.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunTable2Tiny(t *testing.T) {
	if err := run([]string{"-artifact", "table2", "-days", "2", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7TinyWithChart(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-artifact", "fig7", "-days", "2", "-scale", "0.05",
		"-chart", "-outdir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run([]string{"-artifact", "fig99"}); err == nil {
		t.Error("unknown artifact should fail")
	}
}

// TestBenchJSONCanonicalWorkers is the regression for the redundant
// workers=0 vs workers=1 trajectory records: on a host where both resolve
// to one worker, back-to-back -bench-json emissions must leave ONE
// canonical record (keyed by resolved_workers), while a run with a
// genuinely different resolved worker count appends a new one.
func TestBenchJSONCanonicalWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	base := []string{"-artifact", "table1", "-bench-json", path}
	if err := run(append(base, "-workers", "1")); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-workers", "0", "-bench-note", "canonical")); err != nil {
		t.Fatal(err)
	}
	readRecords := func() []BenchRecord {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var recs []BenchRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	recs := readRecords()
	if runtime.NumCPU() == 1 || parallel.Workers(0) == 1 {
		if len(recs) != 1 {
			t.Fatalf("workers 0 and 1 both resolve to 1: want 1 canonical record, got %d", len(recs))
		}
	} else {
		// Multi-core host: -workers 0 resolves to >1 so the shapes differ
		// and both records must survive.
		if len(recs) != 2 {
			t.Fatalf("want 2 records for distinct resolved worker counts, got %d", len(recs))
		}
	}
	last := recs[len(recs)-1]
	if last.ResolvedW != parallel.Workers(0) {
		t.Fatalf("resolved_workers = %d, want %d", last.ResolvedW, parallel.Workers(0))
	}
	if last.Comment != "canonical" {
		t.Fatalf("comment = %q, want %q", last.Comment, "canonical")
	}
	// An explicit distinct resolved worker count always appends.
	if err := run(append(base, "-workers", "3")); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(); len(got) != len(recs)+1 {
		t.Fatalf("distinct resolved workers should append: had %d, now %d", len(recs), len(got))
	}
}
