package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-artifact", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6aTiny(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-artifact", "fig6a", "-trials", "1", "-scale", "0.05",
		"-models", "AU", "-outdir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6a.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunTable2Tiny(t *testing.T) {
	if err := run([]string{"-artifact", "table2", "-days", "2", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7TinyWithChart(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-artifact", "fig7", "-days", "2", "-scale", "0.05",
		"-chart", "-outdir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run([]string{"-artifact", "fig99"}); err == nil {
		t.Error("unknown artifact should fail")
	}
}
